#include "scenario/spec.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace bestpeer::scenario {

namespace {

using obs::JsonValue;

/// Strict field cursor over one JSON object: every member must be
/// claimed by exactly one Take* call, duplicates and unknown keys are
/// fatal, and type mismatches name the key and context. The pattern is
/// claim-then-verify: handlers Take what they know, then Finish() rejects
/// whatever is left.
class FieldReader {
 public:
  FieldReader(const JsonValue& value, std::string context)
      : context_(std::move(context)) {
    if (value.is_object()) {
      members_ = &value.AsObject();
      taken_.assign(members_->size(), false);
    }
  }

  Status RequireObject() const {
    if (members_ == nullptr) {
      return Err("expected an object");
    }
    for (size_t i = 0; i < members_->size(); ++i) {
      for (size_t j = i + 1; j < members_->size(); ++j) {
        if ((*members_)[i].first == (*members_)[j].first) {
          return Err("duplicate key '" + (*members_)[i].first + "'");
        }
      }
    }
    return Status::OK();
  }

  /// The member for `key`, marking it claimed; nullptr when absent.
  const JsonValue* Take(std::string_view key) {
    if (members_ == nullptr) return nullptr;
    for (size_t i = 0; i < members_->size(); ++i) {
      if ((*members_)[i].first == key) {
        taken_[i] = true;
        return &(*members_)[i].second;
      }
    }
    return nullptr;
  }

  /// Optional number with range check; absent keeps *out unchanged.
  Status TakeNumber(std::string_view key, double* out, double min,
                    double max) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return Status::OK();
    if (!v->is_number()) return Err(std::string(key) + " must be a number");
    const double n = v->AsNumber();
    if (!(n >= min && n <= max)) {
      return Err(std::string(key) + " = " + std::to_string(n) +
                 " out of range [" + std::to_string(min) + ", " +
                 std::to_string(max) + "]");
    }
    *out = n;
    return Status::OK();
  }

  /// Optional non-negative integer (rejects fractional values).
  Status TakeCount(std::string_view key, size_t* out, double max) {
    double n = static_cast<double>(*out);
    BP_RETURN_IF_ERROR(TakeNumber(key, &n, 0, max));
    if (n != std::floor(n)) {
      return Err(std::string(key) + " must be an integer");
    }
    *out = static_cast<size_t>(n);
    return Status::OK();
  }

  Status TakeString(std::string_view key, std::string* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return Status::OK();
    if (!v->is_string()) return Err(std::string(key) + " must be a string");
    *out = v->AsString();
    return Status::OK();
  }

  Status TakeBool(std::string_view key, bool* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return Status::OK();
    if (!v->is_bool()) return Err(std::string(key) + " must be a boolean");
    *out = v->AsBool();
    return Status::OK();
  }

  /// After all Take* calls: any unclaimed member is an unknown key.
  Status Finish() const {
    if (members_ == nullptr) return Status::OK();
    for (size_t i = 0; i < members_->size(); ++i) {
      if (!taken_[i]) {
        return Err("unknown key '" + (*members_)[i].first + "'");
      }
    }
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("scenario: " + msg + " in " + context_);
  }

 private:
  const std::vector<std::pair<std::string, JsonValue>>* members_ = nullptr;
  std::vector<bool> taken_;
  std::string context_;
};

constexpr double kMaxMs = 3.6e9;  // One sim-hour; generous for any run.

Status ParseTopology(const JsonValue& value, TopologySpec* out) {
  FieldReader r(value, "topology");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(r.TakeString("kind", &out->kind));
  BP_RETURN_IF_ERROR(r.TakeCount("fanout", &out->fanout, 64));
  BP_RETURN_IF_ERROR(r.TakeCount("max_degree", &out->max_degree, 64));
  BP_RETURN_IF_ERROR(r.Finish());
  if (out->kind != "star" && out->kind != "tree" && out->kind != "line" &&
      out->kind != "random") {
    return r.Err("kind must be star|tree|line|random, got '" + out->kind +
                 "'");
  }
  if (out->fanout == 0) return r.Err("fanout must be >= 1");
  if (out->max_degree < 2) return r.Err("max_degree must be >= 2");
  return Status::OK();
}

Status ParseClass(const JsonValue& value, size_t index, NodeClassSpec* out) {
  FieldReader r(value, "classes[" + std::to_string(index) + "]");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(r.TakeString("name", &out->name));
  BP_RETURN_IF_ERROR(r.TakeCount("count", &out->count, 100000));
  BP_RETURN_IF_ERROR(r.TakeNumber("bandwidth_mbps", &out->bandwidth_mbps,
                                  0.008, 100000));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("extra_latency_ms", &out->extra_latency_ms, 0, 10000));
  double threads = out->cpu_threads;
  BP_RETURN_IF_ERROR(r.TakeNumber("cpu_threads", &threads, 1, 256));
  if (threads != std::floor(threads)) {
    return r.Err("cpu_threads must be an integer");
  }
  out->cpu_threads = static_cast<int>(threads);
  BP_RETURN_IF_ERROR(
      r.TakeCount("objects_per_node", &out->objects_per_node, 1000000));
  BP_RETURN_IF_ERROR(
      r.TakeCount("matches_per_node", &out->matches_per_node, 100000));
  BP_RETURN_IF_ERROR(r.TakeBool("issues_queries", &out->issues_queries));
  BP_RETURN_IF_ERROR(r.TakeBool("free_rider", &out->free_rider));
  BP_RETURN_IF_ERROR(r.Finish());
  if (out->name.empty()) return r.Err("class needs a non-empty name");
  if (out->count == 0) return r.Err("count must be >= 1");
  if (out->matches_per_node > out->objects_per_node) {
    return r.Err("matches_per_node exceeds objects_per_node");
  }
  if (out->free_rider) {
    if (out->matches_per_node != 0) {
      return r.Err("free_rider class must have matches_per_node = 0");
    }
    if (!out->issues_queries) {
      return r.Err("free_rider class must issue queries");
    }
  }
  return Status::OK();
}

Status ParseArrival(const JsonValue& value, const std::string& phase_name,
                    double duration_ms, ArrivalSpec* out) {
  FieldReader r(value, "phase '" + phase_name + "' arrival");
  BP_RETURN_IF_ERROR(r.RequireObject());
  std::string process;
  BP_RETURN_IF_ERROR(r.TakeString("process", &process));
  if (process == "constant") {
    out->process = ArrivalProcess::kConstant;
  } else if (process == "poisson") {
    out->process = ArrivalProcess::kPoisson;
  } else if (process == "flash") {
    out->process = ArrivalProcess::kFlash;
  } else if (process == "diurnal") {
    out->process = ArrivalProcess::kDiurnal;
  } else {
    return r.Err("process must be constant|poisson|flash|diurnal, got '" +
                 process + "'");
  }
  BP_RETURN_IF_ERROR(
      r.TakeNumber("rate_per_s", &out->rate_per_s, 0.001, 1e6));
  BP_RETURN_IF_ERROR(r.TakeNumber("multiplier", &out->multiplier, 1, 1000));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("spike_start_ms", &out->spike_start_ms, 0, kMaxMs));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("spike_end_ms", &out->spike_end_ms, 0, kMaxMs));
  BP_RETURN_IF_ERROR(r.TakeNumber("amplitude", &out->amplitude, 0, 1));
  BP_RETURN_IF_ERROR(r.TakeNumber("period_ms", &out->period_ms, 0, kMaxMs));
  BP_RETURN_IF_ERROR(r.Finish());
  if (out->rate_per_s <= 0) return r.Err("rate_per_s is required (> 0)");
  if (out->process == ArrivalProcess::kFlash) {
    if (out->multiplier <= 1) return r.Err("flash needs multiplier > 1");
    if (!(out->spike_start_ms < out->spike_end_ms)) {
      return r.Err("flash needs spike_start_ms < spike_end_ms");
    }
    if (out->spike_end_ms > duration_ms) {
      return r.Err("spike window extends past the phase duration");
    }
  }
  if (out->process == ArrivalProcess::kDiurnal) {
    if (out->amplitude <= 0) return r.Err("diurnal needs amplitude > 0");
    if (out->period_ms <= 0) return r.Err("diurnal needs period_ms > 0");
  }
  return Status::OK();
}

Status ParsePhase(const JsonValue& value, size_t index, PhaseSpec* out) {
  FieldReader r(value, "phases[" + std::to_string(index) + "]");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(r.TakeString("name", &out->name));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("duration_ms", &out->duration_ms, 0, kMaxMs));
  const JsonValue* arrival = r.Take("arrival");
  BP_RETURN_IF_ERROR(r.Finish());
  if (out->name.empty()) return r.Err("phase needs a non-empty name");
  if (out->duration_ms <= 0) return r.Err("duration_ms must be > 0");
  if (arrival == nullptr) return r.Err("phase needs an arrival process");
  return ParseArrival(*arrival, out->name, out->duration_ms, &out->arrival);
}

Status ParseChurnWave(const JsonValue& value, size_t index,
                      ChurnWaveSpec* out) {
  FieldReader r(value, "churn[" + std::to_string(index) + "]");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(r.TakeNumber("at_ms", &out->at_ms, 0, kMaxMs));
  BP_RETURN_IF_ERROR(r.TakeString("class", &out->target_class));
  BP_RETURN_IF_ERROR(r.TakeNumber("fraction", &out->fraction, 0, 1));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("down_for_ms", &out->down_for_ms, 0, kMaxMs));
  BP_RETURN_IF_ERROR(r.Finish());
  if (out->target_class.empty()) return r.Err("churn wave needs a class");
  if (out->fraction <= 0) return r.Err("fraction must be in (0, 1]");
  return Status::OK();
}

Status ParseFault(const JsonValue& value,
                  workload::FaultRecoveryOptions* out) {
  FieldReader r(value, "fault");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(
      r.TakeNumber("message_loss", &out->message_loss, 0, 0.9));
  double deadline_ms = ToMillis(out->query_deadline);
  BP_RETURN_IF_ERROR(
      r.TakeNumber("query_deadline_ms", &deadline_ms, 0, kMaxMs));
  out->query_deadline = MsToSimTime(deadline_ms);
  double retries = out->liglo_retries;
  BP_RETURN_IF_ERROR(r.TakeNumber("liglo_retries", &retries, 0, 16));
  out->liglo_retries = static_cast<int>(retries);
  double threshold = out->peer_failure_threshold;
  BP_RETURN_IF_ERROR(
      r.TakeNumber("peer_failure_threshold", &threshold, 1, 1000));
  out->peer_failure_threshold = static_cast<uint32_t>(threshold);
  double expiry_ms = ToMillis(out->agent_seen_expiry);
  BP_RETURN_IF_ERROR(
      r.TakeNumber("agent_seen_expiry_ms", &expiry_ms, 0, kMaxMs));
  out->agent_seen_expiry = MsToSimTime(expiry_ms);
  return r.Finish();
}

}  // namespace

SimTime MsToSimTime(double ms) {
  return static_cast<SimTime>(std::llround(ms * 1000.0));
}

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kConstant:
      return "constant";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kFlash:
      return "flash";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "?";
}

size_t ScenarioSpec::TotalNodes() const {
  size_t n = 0;
  for (const auto& c : classes) n += c.count;
  return n;
}

SimTime ScenarioSpec::TotalDuration() const {
  double ms = 0;
  for (const auto& p : phases) ms += p.duration_ms;
  return MsToSimTime(ms);
}

size_t ScenarioSpec::ClassOffset(size_t c) const {
  size_t offset = 0;
  for (size_t i = 0; i < c; ++i) offset += classes[i].count;
  return offset;
}

size_t ScenarioSpec::ClassOf(size_t node) const {
  size_t offset = 0;
  for (size_t c = 0; c < classes.size(); ++c) {
    offset += classes[c].count;
    if (node < offset) return c;
  }
  return classes.size() - 1;
}

Result<ScenarioSpec> ParseScenario(const obs::JsonValue& root) {
  ScenarioSpec spec;
  FieldReader r(root, "scenario");
  BP_RETURN_IF_ERROR(r.RequireObject());
  BP_RETURN_IF_ERROR(r.TakeString("name", &spec.name));
  double seed = static_cast<double>(spec.seed);
  BP_RETURN_IF_ERROR(r.TakeNumber("seed", &seed, 0, 9e15));
  if (seed != std::floor(seed)) return r.Err("seed must be an integer");
  spec.seed = static_cast<uint64_t>(seed);
  const JsonValue* topology = r.Take("topology");
  BP_RETURN_IF_ERROR(r.TakeCount("query_pool", &spec.query_pool, 10000));
  BP_RETURN_IF_ERROR(
      r.TakeNumber("query_zipf_skew", &spec.query_zipf_skew, 0, 4));
  BP_RETURN_IF_ERROR(r.TakeCount("object_size", &spec.object_size, 1 << 20));
  size_t ttl = spec.ttl;
  BP_RETURN_IF_ERROR(r.TakeCount("ttl", &ttl, 255));
  spec.ttl = static_cast<uint16_t>(ttl);
  BP_RETURN_IF_ERROR(
      r.TakeCount("max_direct_peers", &spec.max_direct_peers, 1024));
  std::string reconfigure = "off";
  BP_RETURN_IF_ERROR(r.TakeString("reconfigure", &reconfigure));
  if (reconfigure == "phase") {
    spec.reconfigure_each_phase = true;
  } else if (reconfigure != "off") {
    return r.Err("reconfigure must be phase|off, got '" + reconfigure + "'");
  }
  const JsonValue* classes = r.Take("classes");
  const JsonValue* phases = r.Take("phases");
  const JsonValue* churn = r.Take("churn");
  const JsonValue* fault = r.Take("fault");
  BP_RETURN_IF_ERROR(r.Finish());

  if (spec.name.empty()) return r.Err("scenario needs a non-empty name");
  for (char c : spec.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return r.Err("name must match [a-z0-9_]+ (used in filenames)");
  }
  if (spec.query_pool == 0) return r.Err("query_pool must be >= 1");
  if (spec.object_size == 0) return r.Err("object_size must be >= 1");
  if (spec.ttl == 0) return r.Err("ttl must be >= 1");
  if (spec.max_direct_peers == 0) {
    return r.Err("max_direct_peers must be >= 1");
  }

  if (topology != nullptr) {
    BP_RETURN_IF_ERROR(ParseTopology(*topology, &spec.topology));
  }

  if (classes == nullptr || !classes->is_array() ||
      classes->AsArray().empty()) {
    return r.Err("scenario needs a non-empty classes array");
  }
  for (size_t i = 0; i < classes->AsArray().size(); ++i) {
    NodeClassSpec cls;
    BP_RETURN_IF_ERROR(ParseClass(classes->AsArray()[i], i, &cls));
    for (const auto& earlier : spec.classes) {
      if (earlier.name == cls.name) {
        return r.Err("duplicate class name '" + cls.name + "'");
      }
    }
    spec.classes.push_back(std::move(cls));
  }
  if (spec.TotalNodes() < 2) return r.Err("scenario needs >= 2 nodes");
  bool any_querying = false;
  for (const auto& c : spec.classes) any_querying |= c.issues_queries;
  if (!any_querying) return r.Err("no class issues queries");

  if (phases == nullptr || !phases->is_array() ||
      phases->AsArray().empty()) {
    return r.Err("scenario needs a non-empty phases array");
  }
  for (size_t i = 0; i < phases->AsArray().size(); ++i) {
    PhaseSpec phase;
    BP_RETURN_IF_ERROR(ParsePhase(phases->AsArray()[i], i, &phase));
    for (const auto& earlier : spec.phases) {
      if (earlier.name == phase.name) {
        return r.Err("duplicate phase name '" + phase.name + "'");
      }
    }
    spec.phases.push_back(std::move(phase));
  }

  if (churn != nullptr) {
    if (!churn->is_array()) return r.Err("churn must be an array");
    const double total_ms = ToMillis(spec.TotalDuration());
    for (size_t i = 0; i < churn->AsArray().size(); ++i) {
      ChurnWaveSpec wave;
      BP_RETURN_IF_ERROR(ParseChurnWave(churn->AsArray()[i], i, &wave));
      bool found = false;
      for (const auto& c : spec.classes) found |= c.name == wave.target_class;
      if (!found) {
        return r.Err("churn wave targets unknown class '" +
                     wave.target_class + "'");
      }
      if (wave.at_ms >= total_ms) {
        return r.Err("churn wave at_ms is past the end of the run");
      }
      spec.churn.push_back(std::move(wave));
    }
  }

  if (fault != nullptr) {
    BP_RETURN_IF_ERROR(ParseFault(*fault, &spec.fault));
  }
  return spec;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  BP_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ReadJsonFile(path));
  return ParseScenario(root);
}

}  // namespace bestpeer::scenario
