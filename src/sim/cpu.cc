#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bestpeer::sim {

CpuModel::CpuModel(Simulator* sim, int threads, metrics::Registry* registry,
                   uint32_t node)
    : sim_(sim), node_(node) {
  assert(threads >= 1);
  free_at_.assign(static_cast<size_t>(threads), 0);
  if (registry != nullptr) {
    tasks_c_ = registry->GetCounter("cpu.tasks");
    busy_us_c_ = registry->GetCounter("cpu.busy_us");
    queue_wait_us_c_ = registry->GetCounter("cpu.queue_wait_us");
    service_us_ = registry->GetHistogram("cpu.service_us");
  }
}

void CpuModel::Submit(SimTime service, EventFn done, const char* name,
                      uint64_t flow,
                      std::vector<std::pair<std::string, uint64_t>> args) {
  assert(service >= 0);
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  SimTime start = std::max(sim_->now(), *it);
  SimTime end = start + service;
  *it = end;
  total_busy_ += service;
  ++tasks_submitted_;
  tasks_c_->Increment();
  busy_us_c_->Add(static_cast<uint64_t>(service));
  queue_wait_us_c_->Add(static_cast<uint64_t>(start - sim_->now()));
  service_us_->Observe(static_cast<double>(service));
  if (name != nullptr) {
    if (trace::TraceRecorder* recorder = sim_->trace()) {
      trace::Span span;
      span.name = name;
      span.cat = "cpu";
      span.tid = node_;
      span.ts = start;
      span.dur = service;
      span.flow = flow;
      span.args = std::move(args);
      if (start > sim_->now()) {
        span.args.emplace_back("qwait",
                               static_cast<uint64_t>(start - sim_->now()));
      }
      recorder->RecordSpan(std::move(span));
    }
  }
  sim_->ScheduleAt(end, std::move(done));
}

SimTime CpuModel::EarliestFree() const {
  SimTime t = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(t, sim_->now());
}

}  // namespace bestpeer::sim
