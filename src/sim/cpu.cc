#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bestpeer::sim {

CpuModel::CpuModel(Simulator* sim, int threads) : sim_(sim) {
  assert(threads >= 1);
  free_at_.assign(static_cast<size_t>(threads), 0);
}

void CpuModel::Submit(SimTime service, EventFn done) {
  assert(service >= 0);
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  SimTime start = std::max(sim_->now(), *it);
  SimTime end = start + service;
  *it = end;
  total_busy_ += service;
  ++tasks_submitted_;
  sim_->ScheduleAt(end, std::move(done));
}

SimTime CpuModel::EarliestFree() const {
  SimTime t = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(t, sim_->now());
}

}  // namespace bestpeer::sim
