#ifndef BESTPEER_SIM_CPU_H_
#define BESTPEER_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::sim {

/// Models a node's processor as `threads` identical servers with a shared
/// FIFO queue. Submitting a task charges its service time to the earliest
/// free server; the completion callback fires when the task finishes.
///
/// This is how per-node work — StorM scans, agent reconstruction, message
/// relaying — consumes simulated time and creates queueing when a node is
/// hit by many requests at once (e.g., the base node collecting answers).
class CpuModel {
 public:
  /// `sim` must outlive this model. threads >= 1. `registry` (optional,
  /// not owned) receives task metrics; `node` labels trace spans.
  CpuModel(Simulator* sim, int threads = 1,
           metrics::Registry* registry = nullptr, uint32_t node = 0);

  /// Enqueues a task taking `service` microseconds; `done` fires at its
  /// completion time. When tracing is enabled and `name` is non-null, the
  /// task's busy interval is recorded as a span (`flow` ties it to its
  /// query/agent id) carrying a "qwait" arg when the task waited for a
  /// free thread, plus any caller-supplied `args` (build them behind a
  /// trace() != nullptr check so untraced runs pay nothing).
  void Submit(SimTime service, EventFn done, const char* name = nullptr,
              uint64_t flow = 0,
              std::vector<std::pair<std::string, uint64_t>> args = {});

  /// Time at which the earliest server becomes free (>= now).
  SimTime EarliestFree() const;

  /// Total busy time accumulated across servers.
  SimTime total_busy() const { return total_busy_; }

  /// Number of tasks submitted.
  uint64_t tasks_submitted() const { return tasks_submitted_; }

  int threads() const { return static_cast<int>(free_at_.size()); }

 private:
  Simulator* sim_;
  uint32_t node_ = 0;
  std::vector<SimTime> free_at_;
  SimTime total_busy_ = 0;
  uint64_t tasks_submitted_ = 0;
  metrics::Counter* tasks_c_ = metrics::Counter::Noop();
  metrics::Counter* busy_us_c_ = metrics::Counter::Noop();
  metrics::Counter* queue_wait_us_c_ = metrics::Counter::Noop();
  metrics::Histogram* service_us_ = metrics::Histogram::Noop();
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_CPU_H_
