#ifndef BESTPEER_SIM_CPU_H_
#define BESTPEER_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/sim_time.h"

namespace bestpeer::sim {

/// Models a node's processor as `threads` identical servers with a shared
/// FIFO queue. Submitting a task charges its service time to the earliest
/// free server; the completion callback fires when the task finishes.
///
/// This is how per-node work — StorM scans, agent reconstruction, message
/// relaying — consumes simulated time and creates queueing when a node is
/// hit by many requests at once (e.g., the base node collecting answers).
class CpuModel {
 public:
  /// `sim` must outlive this model. threads >= 1.
  CpuModel(Simulator* sim, int threads = 1);

  /// Enqueues a task taking `service` microseconds; `done` fires at its
  /// completion time.
  void Submit(SimTime service, EventFn done);

  /// Time at which the earliest server becomes free (>= now).
  SimTime EarliestFree() const;

  /// Total busy time accumulated across servers.
  SimTime total_busy() const { return total_busy_; }

  /// Number of tasks submitted.
  uint64_t tasks_submitted() const { return tasks_submitted_; }

  int threads() const { return static_cast<int>(free_at_.size()); }

 private:
  Simulator* sim_;
  std::vector<SimTime> free_at_;
  SimTime total_busy_ = 0;
  uint64_t tasks_submitted_ = 0;
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_CPU_H_
