#ifndef BESTPEER_SIM_FAULT_H_
#define BESTPEER_SIM_FAULT_H_

#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace bestpeer::sim {

/// Index of a physical machine on the simulated LAN (same alias as
/// network.h; redeclared so this header does not depend on it).
using NodeId = uint32_t;

/// Knobs of the deterministic fault layer. Every probabilistic decision is
/// drawn from one seeded stream, so identical options produce identical
/// fault schedules — the property the churn/fault benches rely on.
struct FaultOptions {
  /// Seed of the fault decision stream.
  uint64_t seed = 1;
  /// Probability that any one message is lost in flight (drawn per send).
  double message_loss = 0.0;
  /// Probability that a delivered message suffers a latency spike.
  double latency_spike_prob = 0.0;
  /// Extra one-way delay added when a spike hits.
  SimTime latency_spike = Millis(50);
  /// Metrics sink (not owned; must outlive the injector). nullptr routes
  /// increments to no-op handles.
  metrics::Registry* metrics = nullptr;
};

/// Outcome of the single per-message decision point in SimNetwork::Send.
struct FaultDecision {
  bool drop = false;
  /// True when the drop came from a partition cut (vs. random loss);
  /// lets the flight recorder attribute the drop cause.
  bool partition = false;
  SimTime extra_delay = 0;
};

/// Deterministic fault injector: probabilistic message loss, per-message
/// latency spikes, scheduled node crash/restart and two-sided partitions.
///
/// Owned by the Simulator (like the trace recorder) so every network built
/// on that simulator sees the same fault plane. The network consults
/// OnSend() once per message; crash/restart flips node online state
/// through a hook the network installs when it binds. Zero probabilities
/// consume no randomness, so an attached-but-quiet injector leaves event
/// schedules bit-identical to a run without one.
class FaultInjector {
 public:
  explicit FaultInjector(Simulator* sim, FaultOptions options);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The single drop/delay decision point, called by SimNetwork::Send for
  /// every message put on the wire.
  FaultDecision OnSend(NodeId src, NodeId dst);

  /// Schedules `node` to crash at absolute time `crash_at`; when
  /// `down_for` > 0 the node restarts that much later. Crashing flips the
  /// node offline through the bound network, so in-flight messages to it
  /// drop under the network's usual offline semantics.
  void ScheduleCrash(NodeId node, SimTime crash_at, SimTime down_for = 0);

  /// Installs a two-sided partition: messages between any node of `side_a`
  /// and any node of `side_b` drop, in both directions. Multiple
  /// partitions compose.
  void Partition(const std::vector<NodeId>& side_a,
                 const std::vector<NodeId>& side_b);

  /// Removes every partition.
  void Heal();

  /// Whether a message from `src` to `dst` crosses a partition cut.
  bool Partitioned(NodeId src, NodeId dst) const;

  /// Installed by the network the injector is bound to; receives
  /// (node, online) flips from scheduled crashes/restarts.
  void SetOnlineHook(std::function<void(NodeId, bool)> hook) {
    set_online_ = std::move(hook);
  }

  const FaultOptions& options() const { return options_; }

  /// Aggregate counters (also exported as fault.* metrics).
  uint64_t drops() const { return drops_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t latency_spikes() const { return latency_spikes_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t restarts() const { return restarts_; }

 private:
  Simulator* sim_;
  FaultOptions options_;
  Rng rng_;
  std::function<void(NodeId, bool)> set_online_;
  /// Normalized (min, max) node pairs severed by active partitions.
  std::set<std::pair<NodeId, NodeId>> cut_;

  uint64_t drops_ = 0;
  uint64_t partition_drops_ = 0;
  uint64_t latency_spikes_ = 0;
  uint64_t crashes_ = 0;
  uint64_t restarts_ = 0;

  metrics::Counter* drops_c_ = metrics::Counter::Noop();
  metrics::Counter* partition_drops_c_ = metrics::Counter::Noop();
  metrics::Counter* spikes_c_ = metrics::Counter::Noop();
  metrics::Counter* crashes_c_ = metrics::Counter::Noop();
  metrics::Counter* restarts_c_ = metrics::Counter::Noop();
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_FAULT_H_
