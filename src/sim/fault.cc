#include "sim/fault.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace bestpeer::sim {

namespace {

std::pair<NodeId, NodeId> NormalizedPair(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

FaultInjector::FaultInjector(Simulator* sim, FaultOptions options)
    : sim_(sim), options_(options), rng_(options.seed) {
  if (options_.metrics != nullptr) {
    metrics::Registry* reg = options_.metrics;
    drops_c_ = reg->GetCounter("fault.drops");
    partition_drops_c_ = reg->GetCounter("fault.partition_drops");
    spikes_c_ = reg->GetCounter("fault.latency_spikes");
    crashes_c_ = reg->GetCounter("fault.crashes");
    restarts_c_ = reg->GetCounter("fault.restarts");
  }
}

FaultDecision FaultInjector::OnSend(NodeId src, NodeId dst) {
  FaultDecision decision;
  // Partition cuts are checked first and consume no randomness: a severed
  // link drops everything regardless of the loss dice.
  if (!cut_.empty() && Partitioned(src, dst)) {
    decision.drop = true;
    decision.partition = true;
    ++partition_drops_;
    partition_drops_c_->Increment();
    return decision;
  }
  // Zero-probability paths draw nothing, so a quiet injector leaves the
  // rng stream — and with it every downstream decision — untouched.
  if (options_.message_loss > 0 && rng_.NextBool(options_.message_loss)) {
    decision.drop = true;
    ++drops_;
    drops_c_->Increment();
    return decision;
  }
  if (options_.latency_spike_prob > 0 &&
      rng_.NextBool(options_.latency_spike_prob)) {
    decision.extra_delay = options_.latency_spike;
    ++latency_spikes_;
    spikes_c_->Increment();
  }
  return decision;
}

void FaultInjector::ScheduleCrash(NodeId node, SimTime crash_at,
                                  SimTime down_for) {
  sim_->ScheduleAt(crash_at, [this, node]() {
    ++crashes_;
    crashes_c_->Increment();
    if (obs::FlightRecorder* flight = sim_->flight()) {
      obs::FlightEvent e;
      e.ts = sim_->now();
      e.type = obs::EventType::kCrash;
      e.node = node;
      flight->Record(e);
      flight->TripAnomaly(sim_->now(),
                          "crash node=" + std::to_string(node));
    }
    if (set_online_) set_online_(node, false);
  });
  if (down_for > 0) {
    sim_->ScheduleAt(crash_at + down_for, [this, node]() {
      ++restarts_;
      restarts_c_->Increment();
      if (obs::FlightRecorder* flight = sim_->flight()) {
        obs::FlightEvent e;
        e.ts = sim_->now();
        e.type = obs::EventType::kRestart;
        e.node = node;
        flight->Record(e);
      }
      if (set_online_) set_online_(node, true);
    });
  }
}

void FaultInjector::Partition(const std::vector<NodeId>& side_a,
                              const std::vector<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) {
      if (a == b) continue;
      cut_.insert(NormalizedPair(a, b));
    }
  }
}

void FaultInjector::Heal() { cut_.clear(); }

bool FaultInjector::Partitioned(NodeId src, NodeId dst) const {
  return cut_.count(NormalizedPair(src, dst)) != 0;
}

}  // namespace bestpeer::sim
