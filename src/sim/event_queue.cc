#include "sim/event_queue.h"

#include <utility>

namespace bestpeer::sim {

uint64_t EventQueue::Push(SimTime time, EventFn fn) {
  uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, std::move(fn)});
  return seq;
}

Event EventQueue::Pop() {
  // priority_queue::top() returns const&; the function object must be moved
  // out before pop. const_cast is safe because the element is removed
  // immediately and never re-compared.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

}  // namespace bestpeer::sim
