#ifndef BESTPEER_SIM_SIMULATOR_H_
#define BESTPEER_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>

#include "sim/event_queue.h"
#include "util/sim_time.h"
#include "util/trace.h"

namespace bestpeer::obs {
class FlightRecorder;
struct FlightRecorderOptions;
}  // namespace bestpeer::obs

namespace bestpeer::sim {

class FaultInjector;
struct FaultOptions;

/// Discrete-event simulation kernel: a virtual clock plus an event queue.
///
/// All BestPeer experiments run on one Simulator. The clock only advances
/// when events fire, so results are bit-for-bit reproducible and independent
/// of host speed — the property that lets a laptop stand in for the paper's
/// 32-PC cluster.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`; `t` must be >= now().
  void ScheduleAt(SimTime t, EventFn fn);

  /// Schedules `fn` `delay` microseconds from now; delay must be >= 0.
  void ScheduleAfter(SimTime delay, EventFn fn);

  /// Fires the earliest event. Returns false when the queue is empty.
  bool Step();

  /// Runs until no events remain (or `max_events` fired). Returns the
  /// number of events processed.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX);

  /// Runs events with time <= `deadline`; the clock ends at `deadline`
  /// if the queue drains early. Returns events processed.
  size_t RunUntil(SimTime deadline);

  /// Number of events processed since construction.
  uint64_t events_processed() const { return events_processed_; }

  /// Number of pending events.
  size_t pending() const { return queue_.size(); }

  // --- tracing ------------------------------------------------------------
  //
  // The simulator owns the per-run span recorder so every layer (network,
  // CPU models, protocols) reaches it through the clock it already holds.
  // Disabled by default: trace() returns nullptr and instrumented code
  // skips span construction entirely, keeping the hot path overhead to a
  // single pointer test.

  /// Starts recording spans (idempotent; keeps existing spans). The
  /// default recorder samples everything into a ring large enough that
  /// sim runs never wrap; pass options to bound it or sample.
  void EnableTracing();
  void EnableTracing(const trace::TraceRecorderOptions& options);

  /// Stops recording and drops the recorder.
  void DisableTracing() { trace_.reset(); }

  /// The active recorder, or nullptr when tracing is disabled.
  trace::TraceRecorder* trace() const { return trace_.get(); }

  /// Shared handle to the recorder so results can outlive the simulator.
  std::shared_ptr<trace::TraceRecorder> shared_trace() const { return trace_; }

  // --- fault injection ----------------------------------------------------
  //
  // The simulator owns the per-run fault injector for the same reason it
  // owns the trace recorder: every layer reaches it through the clock it
  // already holds. Disabled by default: fault() returns nullptr and the
  // network's send path pays a single pointer test.

  /// Creates the fault injector (idempotent; later calls keep the first).
  /// Enable faults before constructing a SimNetwork so the network can
  /// bind its online hook for scheduled crashes.
  FaultInjector* EnableFaults(const FaultOptions& options);

  /// The active injector, or nullptr when fault injection is disabled.
  FaultInjector* fault() const { return fault_.get(); }

  // --- flight recorder ----------------------------------------------------
  //
  // Bounded ring of structured events (sends, drops with cause, agent
  // hops, crashes, deadline expiries) for post-hoc incident analysis.
  // Same ownership and gating story as the trace recorder: disabled by
  // default, flight() == nullptr, callers pay one pointer test.

  /// Creates the flight recorder (idempotent; later calls keep the first).
  obs::FlightRecorder* EnableFlightRecorder(
      const obs::FlightRecorderOptions& options);

  /// The active recorder, or nullptr when flight recording is disabled.
  obs::FlightRecorder* flight() const { return flight_.get(); }

  /// Shared handle so dumps can outlive the simulator.
  std::shared_ptr<obs::FlightRecorder> shared_flight() const {
    return flight_;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  std::shared_ptr<trace::TraceRecorder> trace_;
  std::unique_ptr<FaultInjector> fault_;
  std::shared_ptr<obs::FlightRecorder> flight_;
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_SIMULATOR_H_
