#ifndef BESTPEER_SIM_EVENT_QUEUE_H_
#define BESTPEER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace bestpeer::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// A scheduled event. Events with equal times fire in scheduling order
/// (FIFO by sequence number), which keeps simulations deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  EventFn fn;
};

/// Min-priority queue of events ordered by (time, seq).
class EventQueue {
 public:
  /// Enqueues an event at `time`; returns its sequence number.
  uint64_t Push(SimTime time, EventFn fn);

  /// True iff no events are pending.
  bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime PeekTime() const { return heap_.top().time; }

  /// Removes and returns the earliest event; queue must be non-empty.
  Event Pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_EVENT_QUEUE_H_
