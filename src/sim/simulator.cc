#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "obs/flight_recorder.h"
#include "sim/fault.h"

namespace bestpeer::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

FaultInjector* Simulator::EnableFaults(const FaultOptions& options) {
  if (fault_ == nullptr) {
    fault_ = std::make_unique<FaultInjector>(this, options);
  }
  return fault_.get();
}

obs::FlightRecorder* Simulator::EnableFlightRecorder(
    const obs::FlightRecorderOptions& options) {
  if (flight_ == nullptr) {
    flight_ = std::make_shared<obs::FlightRecorder>(options);
  }
  return flight_.get();
}

void Simulator::ScheduleAt(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.Push(t < now_ ? now_ : t, std::move(fn));
}

void Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  assert(delay >= 0);
  ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.Pop();
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulator::EnableTracing() {
  if (trace_ == nullptr) trace_ = std::make_shared<trace::TraceRecorder>();
}

void Simulator::EnableTracing(const trace::TraceRecorderOptions& options) {
  if (trace_ == nullptr) {
    trace_ = std::make_shared<trace::TraceRecorder>(options);
  }
}

size_t Simulator::RunUntil(SimTime deadline) {
  size_t n = 0;
  while (!queue_.empty() && queue_.PeekTime() <= deadline) {
    Step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace bestpeer::sim
