#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace bestpeer::sim {

SimNetwork::SimNetwork(Simulator* sim, NetworkOptions options)
    : sim_(sim), options_(options) {
  assert(options_.bytes_per_us > 0);
}

NodeId SimNetwork::AddNode(int cpu_threads) {
  Node node;
  int threads = cpu_threads > 0 ? cpu_threads : options_.cpu_threads;
  node.cpu = std::make_unique<CpuModel>(sim_, threads);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  assert(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

SimTime SimNetwork::TxTime(size_t bytes) const {
  return static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) / options_.bytes_per_us));
}

void SimNetwork::Send(NodeId src, NodeId dst, uint32_t type, Bytes payload,
                      size_t extra_wire_bytes) {
  assert(src < nodes_.size() && dst < nodes_.size());
  auto msg = std::make_shared<SimMessage>();
  msg->src = src;
  msg->dst = dst;
  msg->type = type;
  msg->wire_size =
      payload.size() + options_.header_overhead + extra_wire_bytes;
  msg->payload = std::move(payload);
  msg->id = next_message_id_++;

  Node& sender = nodes_[src];
  const SimTime tx = TxTime(msg->wire_size);
  const SimTime send_time = sim_->now();

  // Serialize on the sender's uplink (FIFO).
  SimTime up_start = std::max(send_time, sender.uplink_free_at);
  SimTime up_done = up_start + tx;
  sender.uplink_free_at = up_done;
  sender.bytes_sent += msg->wire_size;
  ++messages_sent_;
  total_wire_bytes_ += msg->wire_size;

  // Propagate, then serialize on the receiver's downlink. The downlink
  // reservation must happen at arrival time (other packets may arrive in
  // between), so it is done inside the arrival event.
  SimTime arrival = up_done + options_.latency;
  sim_->ScheduleAt(arrival, [this, msg, tx, send_time]() {
    Node& receiver = nodes_[msg->dst];
    if (!receiver.online) {
      ++messages_dropped_;
      return;
    }
    SimTime rx_start = std::max(sim_->now(), receiver.downlink_free_at);
    SimTime rx_done = rx_start + tx;
    receiver.downlink_free_at = rx_done;
    sim_->ScheduleAt(rx_done, [this, msg, send_time]() {
      Node& node = nodes_[msg->dst];
      if (!node.online) {
        ++messages_dropped_;
        return;
      }
      node.bytes_received += msg->wire_size;
      if (trace_) trace_(*msg, send_time, sim_->now());
      if (node.handler) node.handler(*msg);
    });
  });
}

void SimNetwork::SetOnline(NodeId node, bool online) {
  assert(node < nodes_.size());
  nodes_[node].online = online;
}

bool SimNetwork::IsOnline(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].online;
}

CpuModel& SimNetwork::Cpu(NodeId node) {
  assert(node < nodes_.size());
  return *nodes_[node].cpu;
}

uint64_t SimNetwork::node_bytes_sent(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].bytes_sent;
}

uint64_t SimNetwork::node_bytes_received(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].bytes_received;
}

}  // namespace bestpeer::sim
