#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"
#include "sim/fault.h"

namespace bestpeer::sim {

SimNetwork::SimNetwork(Simulator* sim, NetworkOptions options)
    : sim_(sim), options_(options) {
  assert(options_.bytes_per_us > 0);
  if (FaultInjector* faults = sim_->fault()) {
    // Scheduled crash/restart flips node state through us, so in-flight
    // messages to a crashed node drop under the usual offline semantics.
    faults->SetOnlineHook([this](NodeId node, bool online) {
      if (node < nodes_.size()) SetOnline(node, online);
    });
  }
  if (options_.metrics != nullptr) {
    metrics::Registry* reg = options_.metrics;
    messages_sent_c_ = reg->GetCounter("net.messages_sent");
    messages_dropped_c_ = reg->GetCounter("net.messages_dropped");
    wire_bytes_c_ = reg->GetCounter("net.wire_bytes");
    queue_wait_us_c_ = reg->GetCounter("net.queue_wait_us");
    delivery_latency_us_ = reg->GetHistogram("net.delivery_latency_us");
  }
}

NodeId SimNetwork::AddNode(int cpu_threads) {
  Node node;
  int threads = cpu_threads > 0 ? cpu_threads : options_.cpu_threads;
  NodeId id = static_cast<NodeId>(nodes_.size());
  node.cpu =
      std::make_unique<CpuModel>(sim_, threads, options_.metrics, id);
  if (options_.metrics != nullptr) {
    const metrics::LabelSet labels = {{"node", std::to_string(id)}};
    node.bytes_sent_c = options_.metrics->GetCounter("net.node_bytes_sent",
                                                     labels);
    node.bytes_received_c =
        options_.metrics->GetCounter("net.node_bytes_received", labels);
  }
  nodes_.push_back(std::move(node));
  return id;
}

void SimNetwork::SetHandler(NodeId node, Handler handler) {
  assert(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void SimNetwork::RegisterTypeName(uint32_t type, std::string name) {
  // Mirror into the flight recorder so NDJSON dumps carry the same
  // readable names as trace spans (enable the recorder before building
  // the protocol stacks, which is when names get registered).
  if (obs::FlightRecorder* flight = sim_->flight()) {
    flight->RegisterTypeName(type, name);
  }
  type_names_[type] = std::move(name);
}

std::string_view SimNetwork::TypeName(uint32_t type) const {
  auto it = type_names_.find(type);
  return it == type_names_.end() ? std::string_view() : it->second;
}

SimTime SimNetwork::TxTime(size_t bytes) const {
  // Ceiling, not rounding: a nonzero payload always occupies the NIC for
  // at least 1 us. llround here let any message under bytes_per_us/2
  // bytes serialize in 0 us — a free infinite-bandwidth NIC for small
  // control messages that could reorder against the FIFO uplink model.
  return static_cast<SimTime>(
      std::ceil(static_cast<double>(bytes) / options_.bytes_per_us));
}

SimTime SimNetwork::NodeTxTime(NodeId node, size_t bytes) const {
  assert(node < nodes_.size());
  const double rate = nodes_[node].profile.bytes_per_us;
  if (rate <= 0) return TxTime(bytes);
  return static_cast<SimTime>(std::ceil(static_cast<double>(bytes) / rate));
}

void SimNetwork::SetLinkProfile(NodeId node, const LinkProfile& profile) {
  assert(node < nodes_.size());
  assert(profile.bytes_per_us >= 0 && profile.extra_latency >= 0);
  nodes_[node].profile = profile;
}

const LinkProfile& SimNetwork::link_profile(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].profile;
}

void SimNetwork::FlightMessage(obs::EventType type, const SimMessage& msg,
                               obs::DropCause cause, uint64_t b) {
  obs::FlightRecorder* flight = sim_->flight();
  if (flight == nullptr) return;
  obs::FlightEvent e;
  e.ts = sim_->now();
  e.type = type;
  e.cause = cause;
  e.msg_type = msg.type;
  e.node = msg.src;
  e.peer = msg.dst;
  e.flow = msg.flow;
  e.a = msg.wire_size;
  e.b = b;
  flight->Record(e);
}

void SimNetwork::TraceMessage(const SimMessage& msg, SimTime sent,
                              SimTime delivered, bool dropped,
                              SimTime up_wait, SimTime rx_wait) {
  trace::TraceRecorder* recorder = sim_->trace();
  if (recorder == nullptr) return;
  trace::Span span;
  std::string_view name = TypeName(msg.type);
  if (name.empty()) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "msg:%08x", msg.type);
    span.name = buf;
  } else {
    span.name = std::string(name);
  }
  if (dropped) span.name += " (dropped)";
  span.cat = "net";
  span.tid = msg.dst;
  span.ts = sent;
  span.dur = delivered - sent;
  span.flow = msg.flow;
  span.args = {{"src", msg.src},
               {"dst", msg.dst},
               {"wire", msg.wire_size}};
  if (up_wait > 0) {
    span.args.emplace_back("up_wait", static_cast<uint64_t>(up_wait));
  }
  if (rx_wait > 0) {
    span.args.emplace_back("rx_wait", static_cast<uint64_t>(rx_wait));
  }
  recorder->RecordSpan(std::move(span));
}

void SimNetwork::Send(NodeId src, NodeId dst, uint32_t type, Bytes payload,
                      size_t extra_wire_bytes, uint64_t flow) {
  assert(src < nodes_.size() && dst < nodes_.size());
  auto msg = std::make_shared<SimMessage>();
  msg->src = src;
  msg->dst = dst;
  msg->type = type;
  msg->wire_size =
      payload.size() + options_.header_overhead + extra_wire_bytes;
  msg->payload = std::move(payload);
  msg->id = next_message_id_++;
  msg->flow = flow;

  Node& sender = nodes_[src];
  const SimTime tx = NodeTxTime(src, msg->wire_size);
  const SimTime send_time = sim_->now();

  // A crashed/offline sender transmits nothing: its queued sends (e.g.
  // CPU work that completes after the crash) vanish at the source.
  if (!sender.online) {
    ++messages_dropped_;
    messages_dropped_c_->Increment();
    FlightMessage(obs::EventType::kMsgDrop, *msg,
                  obs::DropCause::kSenderOffline, msg->id);
    TraceMessage(*msg, send_time, send_time, /*dropped=*/true);
    return;
  }

  // Serialize on the sender's uplink (FIFO). Time spent waiting for the
  // NIC behind earlier transmissions is queueing delay charged to the
  // sender.
  SimTime up_start = std::max(send_time, sender.uplink_free_at);
  SimTime up_done = up_start + tx;
  sender.uplink_free_at = up_done;
  sender.bytes_sent += msg->wire_size;
  sender.queue_wait += up_start - send_time;
  ++messages_sent_;
  total_wire_bytes_ += msg->wire_size;
  messages_sent_c_->Increment();
  wire_bytes_c_->Add(msg->wire_size);
  sender.bytes_sent_c->Add(msg->wire_size);
  queue_wait_us_c_->Add(static_cast<uint64_t>(up_start - send_time));
  FlightMessage(obs::EventType::kMsgSend, *msg, obs::DropCause::kNone,
                msg->id);
  const SimTime up_wait = up_start - send_time;

  // Both endpoints' extra propagation delay applies: a slow link is slow
  // in either direction, whichever side of the transfer it sits on.
  SimTime arrival = up_done + options_.latency + sender.profile.extra_latency +
                    nodes_[dst].profile.extra_latency;

  // Single fault decision point: probabilistic in-flight loss and latency
  // spikes. The sender already paid for the uplink — the bytes were
  // transmitted — but a lost message never reaches the receiver's NIC.
  if (FaultInjector* faults = sim_->fault()) {
    FaultDecision decision = faults->OnSend(src, dst);
    if (decision.drop) {
      ++messages_dropped_;
      messages_dropped_c_->Increment();
      FlightMessage(obs::EventType::kMsgDrop, *msg,
                    decision.partition ? obs::DropCause::kPartition
                                       : obs::DropCause::kFaultLoss,
                    msg->id);
      sim_->ScheduleAt(arrival, [this, msg, send_time]() {
        TraceMessage(*msg, send_time, sim_->now(), /*dropped=*/true);
      });
      return;
    }
    arrival += decision.extra_delay;
  }

  // Propagate, then serialize on the receiver's downlink. The downlink
  // reservation must happen at arrival time (other packets may arrive in
  // between), so it is done inside the arrival event. The receiver's NIC
  // rate is captured now — in-flight messages keep the profile they were
  // sent under.
  const SimTime rx_tx = NodeTxTime(dst, msg->wire_size);
  sim_->ScheduleAt(arrival, [this, msg, rx_tx, send_time, up_wait]() {
    Node& receiver = nodes_[msg->dst];
    if (!receiver.online) {
      ++messages_dropped_;
      messages_dropped_c_->Increment();
      FlightMessage(obs::EventType::kMsgDrop, *msg,
                    obs::DropCause::kReceiverOffline, msg->id);
      TraceMessage(*msg, send_time, sim_->now(), /*dropped=*/true);
      return;
    }
    SimTime rx_start = std::max(sim_->now(), receiver.downlink_free_at);
    SimTime rx_done = rx_start + rx_tx;
    receiver.downlink_free_at = rx_done;
    // The receiver's queue-wait charge is deferred to delivery time: a
    // receiver that dies between the downlink reservation and rx_done
    // must not accrue queue/occupancy stats for a message it never got
    // (SetOnline(false) releases the NIC reservation itself).
    const SimTime rx_wait = rx_start - sim_->now();
    sim_->ScheduleAt(rx_done, [this, msg, send_time, up_wait, rx_wait]() {
      Node& node = nodes_[msg->dst];
      if (!node.online) {
        ++messages_dropped_;
        messages_dropped_c_->Increment();
        FlightMessage(obs::EventType::kMsgDrop, *msg,
                      obs::DropCause::kReceiverDied, msg->id);
        TraceMessage(*msg, send_time, sim_->now(), /*dropped=*/true);
        return;
      }
      node.queue_wait += rx_wait;
      queue_wait_us_c_->Add(static_cast<uint64_t>(rx_wait));
      node.bytes_received += msg->wire_size;
      node.bytes_received_c->Add(msg->wire_size);
      delivery_latency_us_->Observe(
          static_cast<double>(sim_->now() - send_time));
      FlightMessage(obs::EventType::kMsgDeliver, *msg, obs::DropCause::kNone,
                    static_cast<uint64_t>(sim_->now() - send_time));
      TraceMessage(*msg, send_time, sim_->now(), /*dropped=*/false, up_wait,
                   rx_wait);
      if (trace_) trace_(*msg, send_time, sim_->now());
      if (node.handler) node.handler(*msg);
    });
  });
}

void SimNetwork::SetOnline(NodeId node, bool online) {
  assert(node < nodes_.size());
  Node& n = nodes_[node];
  if (n.online && !online) {
    // Going offline releases both NICs: a transfer into (or out of) a
    // dead host stops occupying the link, so messages queued behind it
    // are not delayed by a reservation that will never deliver.
    n.uplink_free_at = sim_->now();
    n.downlink_free_at = sim_->now();
  }
  n.online = online;
}

bool SimNetwork::IsOnline(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].online;
}

CpuModel& SimNetwork::Cpu(NodeId node) {
  assert(node < nodes_.size());
  return *nodes_[node].cpu;
}

uint64_t SimNetwork::node_bytes_sent(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].bytes_sent;
}

uint64_t SimNetwork::node_bytes_received(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].bytes_received;
}

SimTime SimNetwork::node_queue_wait(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].queue_wait;
}

}  // namespace bestpeer::sim
