#ifndef BESTPEER_SIM_DISPATCHER_H_
#define BESTPEER_SIM_DISPATCHER_H_

#include <map>

#include "sim/network.h"

namespace bestpeer::sim {

/// Routes a node's incoming messages to per-type handlers, so several
/// protocol layers (agent engine, LIGLO client, query protocol, ...) can
/// share one node. Installing the dispatcher claims the node's handler
/// slot on the network.
class Dispatcher {
 public:
  /// Claims `node`'s handler on `network` (both must outlive this).
  Dispatcher(SimNetwork* network, NodeId node);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Registers the handler for one message type (replaces any previous).
  void Register(uint32_t type, SimNetwork::Handler handler);

  /// Handler for messages whose type has no registered handler.
  void RegisterDefault(SimNetwork::Handler handler);

  NodeId node() const { return node_; }
  uint64_t unhandled_count() const { return unhandled_; }

 private:
  void Dispatch(const SimMessage& msg);

  NodeId node_;
  std::map<uint32_t, SimNetwork::Handler> handlers_;
  SimNetwork::Handler default_handler_;
  uint64_t unhandled_ = 0;
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_DISPATCHER_H_
