#include "sim/dispatcher.h"

#include <utility>

#include "util/logging.h"

namespace bestpeer::sim {

Dispatcher::Dispatcher(SimNetwork* network, NodeId node) : node_(node) {
  network->SetHandler(node,
                      [this](const SimMessage& msg) { Dispatch(msg); });
}

void Dispatcher::Register(uint32_t type, SimNetwork::Handler handler) {
  handlers_[type] = std::move(handler);
}

void Dispatcher::RegisterDefault(SimNetwork::Handler handler) {
  default_handler_ = std::move(handler);
}

void Dispatcher::Dispatch(const SimMessage& msg) {
  auto it = handlers_.find(msg.type);
  if (it != handlers_.end()) {
    it->second(msg);
    return;
  }
  if (default_handler_) {
    default_handler_(msg);
    return;
  }
  ++unhandled_;
  BP_LOG(Debug) << "node " << node_ << ": unhandled message type 0x"
                << std::hex << msg.type;
}

}  // namespace bestpeer::sim
