#ifndef BESTPEER_SIM_NETWORK_H_
#define BESTPEER_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::obs {
enum class EventType : uint8_t;
enum class DropCause : uint8_t;
}  // namespace bestpeer::obs

namespace bestpeer::sim {

// Back-compat aliases: the canonical homes are util/ids.h (addresses) and
// net/message.h (the transport-independent datagram).
using bestpeer::kInvalidNode;
using bestpeer::NodeId;
using SimMessage = net::Message;

/// Per-node link override for heterogeneous fleets (scenario engine):
/// a node's NIC bandwidth and an extra propagation delay its messages
/// pay, modelling e.g. a DSL or mobile peer on an otherwise fast LAN.
/// Default-constructed profiles change nothing, so homogeneous runs stay
/// byte-identical to a network without profiles.
struct LinkProfile {
  /// NIC bandwidth in bytes/µs; 0 uses the network's default.
  double bytes_per_us = 0;
  /// Extra one-way propagation latency added to every message this node
  /// sends or receives.
  SimTime extra_latency = 0;
};

/// Cost parameters of the simulated LAN; see DESIGN.md section 4.
struct NetworkOptions {
  /// One-way propagation latency per physical hop.
  SimTime latency = Micros(500);
  /// NIC bandwidth in bytes per microsecond (12.5 == 100 Mbit/s, the
  /// class of switched lab Ethernet behind the paper's cluster).
  double bytes_per_us = 12.5;
  /// Fixed per-message framing overhead added to wire_size. Matches the
  /// real TCP backend's frame header byte-for-byte so simulated and real
  /// wire counts stay comparable.
  size_t header_overhead = net::kFrameOverheadBytes;
  /// CPU threads per node (the MCS/SCS distinction is made at the
  /// protocol layer; nodes default to enough threads to overlap work).
  int cpu_threads = 4;
  /// Metrics sink for this network and its nodes' CPUs (not owned; must
  /// outlive the network). nullptr routes increments to no-op handles.
  metrics::Registry* metrics = nullptr;
};

/// The physical network: a fully connected LAN of nodes, each with an
/// uplink NIC, a downlink NIC and a CPU. Overlay topologies (who is whose
/// *peer*) are a protocol-level concept layered on top — exactly as in the
/// paper, where all 32 PCs share a LAN but BestPeer imposes a logical
/// topology (paper footnote 1: "this is only a logical 'connection'").
///
/// Transmission model (store-and-forward NIC): a message serializes at the
/// sender's uplink, propagates with fixed latency, then serializes at the
/// receiver's downlink. Both NICs are FIFO, so concurrent transfers queue —
/// this is what makes 31 answers converging on one base node take longer
/// than one answer, and it penalizes path-relaying schemes (CS, Gnutella)
/// on every intermediate hop.
class SimNetwork {
 public:
  using Handler = std::function<void(const SimMessage&)>;
  /// (message, time sent, time delivered) — fires on each delivery.
  using TraceFn =
      std::function<void(const SimMessage&, SimTime, SimTime)>;

  SimNetwork(Simulator* sim, NetworkOptions options);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Adds a node; returns its id. cpu_threads <= 0 uses the default.
  NodeId AddNode(int cpu_threads = 0);

  /// Registers the message handler for `node` (replaces any previous one).
  void SetHandler(NodeId node, Handler handler);

  /// Sends a message; it is delivered to the destination handler after
  /// NIC serialization + latency. `extra_wire_bytes` adds modelled bytes
  /// (e.g. a shipped agent class) without materializing them. `flow`
  /// tags the message with its query/agent id for tracing (0 = none).
  /// Messages to — or from — offline nodes are silently dropped
  /// (counted), as are messages the simulator's fault injector loses.
  void Send(NodeId src, NodeId dst, uint32_t type, Bytes payload,
            size_t extra_wire_bytes = 0, uint64_t flow = 0);

  /// Marks a node online/offline. Offline nodes drop incoming messages.
  void SetOnline(NodeId node, bool online);
  bool IsOnline(NodeId node) const;

  /// Installs a per-node link override (heterogeneous fleets). Affects
  /// messages sent and received from now on; in-flight reservations keep
  /// the profile they were made under.
  void SetLinkProfile(NodeId node, const LinkProfile& profile);
  const LinkProfile& link_profile(NodeId node) const;

  /// The node's CPU (submit work to consume simulated time).
  CpuModel& Cpu(NodeId node);

  /// Installs a delivery trace hook (pass nullptr to remove).
  void SetTrace(TraceFn trace) { trace_ = std::move(trace); }

  Simulator& simulator() { return *sim_; }
  const NetworkOptions& options() const { return options_; }
  size_t node_count() const { return nodes_.size(); }

  /// Names a message type for trace spans and debugging (e.g.
  /// "agent.migrate" for the agent transfer tag). Unnamed types render
  /// as "msg:<hex>".
  void RegisterTypeName(uint32_t type, std::string name);

  /// The registered name for `type`, or "" when unregistered.
  std::string_view TypeName(uint32_t type) const;

  /// Aggregate counters.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t total_wire_bytes() const { return total_wire_bytes_; }
  uint64_t node_bytes_sent(NodeId node) const;
  uint64_t node_bytes_received(NodeId node) const;

  /// Total time this node's messages spent queued behind earlier
  /// transmissions on a NIC: uplink waits charge the sender, downlink
  /// waits the receiver. This is the congestion signal the paper's
  /// convergecast patterns (31 answers into one base node) produce.
  SimTime node_queue_wait(NodeId node) const;

  /// Transmission time of `bytes` through one NIC at the default rate.
  SimTime TxTime(size_t bytes) const;

  /// Transmission time of `bytes` through `node`'s NIC (honours its link
  /// profile; equal to TxTime when no profile is set).
  SimTime NodeTxTime(NodeId node, size_t bytes) const;

 private:
  struct Node {
    SimTime uplink_free_at = 0;
    SimTime downlink_free_at = 0;
    LinkProfile profile;
    std::unique_ptr<CpuModel> cpu;
    Handler handler;
    bool online = true;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    SimTime queue_wait = 0;
    metrics::Counter* bytes_sent_c = metrics::Counter::Noop();
    metrics::Counter* bytes_received_c = metrics::Counter::Noop();
  };

  /// Records one wire span on the trace recorder (tracing enabled only).
  /// `up_wait`/`rx_wait` are the FIFO queueing portions of the span, so
  /// the critical-path analyzer can split queueing from transmission.
  void TraceMessage(const SimMessage& msg, SimTime sent, SimTime delivered,
                    bool dropped, SimTime up_wait = 0, SimTime rx_wait = 0);

  /// Records one message event on the flight recorder (enabled only).
  /// `b` carries the event's second payload (delivery latency for
  /// kMsgDeliver, the message id otherwise).
  void FlightMessage(obs::EventType type, const SimMessage& msg,
                     obs::DropCause cause, uint64_t b);

  Simulator* sim_;
  NetworkOptions options_;
  std::vector<Node> nodes_;
  TraceFn trace_;
  std::map<uint32_t, std::string> type_names_;
  uint64_t next_message_id_ = 1;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t total_wire_bytes_ = 0;

  metrics::Counter* messages_sent_c_ = metrics::Counter::Noop();
  metrics::Counter* messages_dropped_c_ = metrics::Counter::Noop();
  metrics::Counter* wire_bytes_c_ = metrics::Counter::Noop();
  metrics::Counter* queue_wait_us_c_ = metrics::Counter::Noop();
  metrics::Histogram* delivery_latency_us_ = metrics::Histogram::Noop();
};

}  // namespace bestpeer::sim

#endif  // BESTPEER_SIM_NETWORK_H_
