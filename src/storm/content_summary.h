#ifndef BESTPEER_STORM_CONTENT_SUMMARY_H_
#define BESTPEER_STORM_CONTENT_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storm/keyword_index.h"
#include "storm/query_expr.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::storm {

/// Compact digest of one peer's indexed content: a Bloom filter over the
/// keyword vocabulary plus the top keywords by posting count. Peers
/// exchange summaries at connect/reconfiguration time so a base node can
/// skip direct peers whose summary provably excludes every DNF branch of
/// a query. Bloom filters have no false negatives, so a skip is always
/// safe: the peer definitely holds no match for any excluded branch.
class ContentSummary {
 public:
  struct BuildOptions {
    /// Bloom bits budget per distinct keyword (10 bits/key + 6 hashes
    /// gives ~1% false positives).
    size_t bits_per_key = 10;
    size_t num_hashes = 6;
    /// How many of the most frequent keywords to carry verbatim.
    size_t top_k = 8;
  };

  /// Decoder caps; encodings exceeding them are rejected as corrupt.
  static constexpr size_t kMaxHashes = 16;
  static constexpr size_t kMaxFilterWords = 1 << 16;
  static constexpr size_t kMaxTopKeywords = 64;

  ContentSummary() = default;

  /// Digests `index` at index epoch `epoch` (mutation epoch + 1, the
  /// same token the result-cache plane stamps on answers).
  static ContentSummary Build(const KeywordIndex& index, uint64_t epoch,
                              const BuildOptions& options);
  static ContentSummary Build(const KeywordIndex& index, uint64_t epoch) {
    return Build(index, epoch, BuildOptions());
  }

  /// True iff the summarized store may contain `keyword`. False means
  /// definitely absent. An empty summary contains nothing.
  bool MayContain(std::string_view keyword) const;

  /// True iff some DNF branch of `query` has every term possibly
  /// present. False means the peer provably matches nothing.
  bool MayMatch(const QueryExpr& query) const;

  /// Wire codec (bounds-checked; every truncation of a valid encoding
  /// fails to decode).
  Bytes Encode() const;
  static Result<ContentSummary> Decode(const Bytes& payload);

  uint64_t epoch() const { return epoch_; }
  uint64_t keyword_count() const { return keyword_count_; }
  size_t filter_bits() const { return bits_.size() * 64; }
  const std::vector<std::pair<std::string, uint32_t>>& top_keywords() const {
    return top_keywords_;
  }

 private:
  uint64_t epoch_ = 0;
  /// Distinct keywords the filter was built over (0 = empty store).
  uint64_t keyword_count_ = 0;
  uint8_t num_hashes_ = 6;
  /// Bloom filter bit array, 64 bits per word.
  std::vector<uint64_t> bits_;
  /// (keyword, posting count) of the most frequent keywords.
  std::vector<std::pair<std::string, uint32_t>> top_keywords_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_CONTENT_SUMMARY_H_
