#include "storm/pager.h"

#include <cerrno>
#include <cstring>

namespace bestpeer::storm {

Result<PageId> MemPager::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPager::Read(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " not allocated");
  }
  ++reads_;
  std::memcpy(out->raw(), pages_[id]->raw(), Page::kPageSize);
  if (out->IsFormatted() && !out->VerifyChecksum()) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status MemPager::Write(PageId id, Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " not allocated");
  }
  ++writes_;
  page.UpdateChecksum();
  std::memcpy(pages_[id]->raw(), page.raw(), Page::kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    f = std::fopen(path.c_str(), "w+b");
  }
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("seek failed on " + path);
  }
  long size = std::ftell(f);
  if (size < 0 || size % static_cast<long>(Page::kPageSize) != 0) {
    std::fclose(f);
    return Status::Corruption(path + " is not page-aligned");
  }
  PageId count = static_cast<PageId>(size / Page::kPageSize);
  return std::unique_ptr<FilePager>(new FilePager(f, count, path));
}

FilePager::~FilePager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> FilePager::Allocate() {
  Page zero;
  if (std::fseek(file_, static_cast<long>(page_count_) *
                            static_cast<long>(Page::kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed on " + path_);
  }
  if (std::fwrite(zero.raw(), Page::kPageSize, 1, file_) != 1) {
    return Status::IoError("append failed on " + path_);
  }
  ++writes_;
  return page_count_++;
}

Status FilePager::Read(PageId id, Page* out) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " not allocated");
  }
  if (std::fseek(file_,
                 static_cast<long>(id) * static_cast<long>(Page::kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed on " + path_);
  }
  if (std::fread(out->raw(), Page::kPageSize, 1, file_) != 1) {
    return Status::IoError("read failed on " + path_);
  }
  ++reads_;
  if (out->IsFormatted() && !out->VerifyChecksum()) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status FilePager::Write(PageId id, Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " not allocated");
  }
  page.UpdateChecksum();
  if (std::fseek(file_,
                 static_cast<long>(id) * static_cast<long>(Page::kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed on " + path_);
  }
  if (std::fwrite(page.raw(), Page::kPageSize, 1, file_) != 1) {
    return Status::IoError("write failed on " + path_);
  }
  ++writes_;
  return Status::OK();
}

Status FilePager::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed on " + path_);
  }
  return Status::OK();
}

}  // namespace bestpeer::storm
