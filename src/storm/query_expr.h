#ifndef BESTPEER_STORM_QUERY_EXPR_H_
#define BESTPEER_STORM_QUERY_EXPR_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bestpeer::storm {

/// A keyword query in disjunctive normal form: space-separated terms are
/// AND-ed, the word OR separates conjunctions. Examples:
///   "needle"                  -> needle
///   "peer agents"             -> peer AND agents
///   "mp3 beatles OR flac"     -> (mp3 AND beatles) OR flac
/// Terms match whole tokens, case-insensitively (see ContainsKeyword).
class QueryExpr {
 public:
  QueryExpr() = default;

  /// Parses the query text; fails on empty queries or empty OR branches
  /// ("a OR", "OR b").
  static Result<QueryExpr> Parse(std::string_view text);

  /// Canonicalizes in place: terms within each AND branch are sorted and
  /// deduplicated, branches likewise. Semantics-preserving (AND/OR are
  /// commutative and idempotent), so "b a OR a b" normalizes to "a b".
  void Normalize();

  /// Parse + Normalize + ToString: the one canonical key both the StorM
  /// query cache and the node result cache use, so "a b" and "b a" stop
  /// being distinct queries end-to-end.
  static Result<std::string> NormalizeQuery(std::string_view text);

  /// True iff `content` satisfies the expression.
  bool Matches(std::string_view content) const;

  /// Total number of terms across all branches.
  size_t term_count() const;

  /// Number of OR branches.
  size_t branch_count() const { return dnf_.size(); }

  /// The DNF: one vector of AND-ed (lower-cased) terms per OR branch.
  const std::vector<std::vector<std::string>>& dnf() const { return dnf_; }

  /// Canonical text form ("a b OR c").
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> dnf_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_QUERY_EXPR_H_
