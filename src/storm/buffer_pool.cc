#include "storm/buffer_pool.h"

#include <cassert>
#include <utility>

namespace bestpeer::storm {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    other.dirty_ = false;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_, dirty_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  dirty_ = false;
}

BufferPool::BufferPool(Pager* pager,
                       std::unique_ptr<ReplacementPolicy> policy,
                       const BufferPoolOptions& options)
    : pager_(pager), policy_(std::move(policy)) {
  frames_.resize(options.frames);
  free_frames_.reserve(options.frames);
  // Hand out low frame ids first.
  for (size_t i = options.frames; i > 0; --i) free_frames_.push_back(i - 1);
  if (options.metrics != nullptr) {
    metrics::LabelSet labels;
    if (!options.metrics_label.empty()) {
      labels.emplace_back("node", options.metrics_label);
    }
    hits_c_ = options.metrics->GetCounter("storm.pool_hits", labels);
    misses_c_ = options.metrics->GetCounter("storm.pool_misses", labels);
    evictions_c_ = options.metrics->GetCounter("storm.pool_evictions", labels);
    writebacks_c_ =
        options.metrics->GetCounter("storm.pool_writebacks", labels);
  }
}

Result<std::unique_ptr<BufferPool>> BufferPool::Create(
    Pager* pager, const BufferPoolOptions& options) {
  if (options.frames == 0) {
    return Status::InvalidArgument("buffer pool needs at least one frame");
  }
  BP_ASSIGN_OR_RETURN(auto policy, MakeReplacementPolicy(options.policy));
  return std::unique_ptr<BufferPool>(
      new BufferPool(pager, std::move(policy), options));
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  std::optional<FrameId> victim = policy_->ChooseVictim();
  if (!victim.has_value()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Frame& frame = frames_[*victim];
  assert(frame.in_use && frame.pins == 0);
  if (frame.dirty) {
    BP_RETURN_IF_ERROR(pager_->Write(frame.page_id, frame.page));
    ++writebacks_;
    writebacks_c_->Increment();
  }
  page_table_.erase(frame.page_id);
  frame.in_use = false;
  frame.dirty = false;
  ++evictions_;
  evictions_c_->Increment();
  return *victim;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.pins == 0) policy_->OnPinned(it->second);
    ++frame.pins;
    ++hits_;
    hits_c_->Increment();
    return PageGuard(this, id, &frame.page);
  }
  ++misses_;
  misses_c_->Increment();
  BP_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  Frame& frame = frames_[f];
  Status s = pager_->Read(id, &frame.page);
  if (!s.ok()) {
    free_frames_.push_back(f);
    return s;
  }
  frame.page_id = id;
  frame.in_use = true;
  frame.dirty = false;
  frame.pins = 1;
  page_table_[id] = f;
  return PageGuard(this, id, &frame.page);
}

Result<PageGuard> BufferPool::New() {
  BP_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  BP_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  Frame& frame = frames_[f];
  frame.page.Init(id);
  frame.page_id = id;
  frame.in_use = true;
  frame.dirty = true;
  frame.pins = 1;
  page_table_[id] = f;
  return PageGuard(this, id, &frame.page);
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_table_.find(id);
  assert(it != page_table_.end() && "unpin of unbuffered page");
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  assert(frame.pins > 0);
  if (dirty) frame.dirty = true;
  --frame.pins;
  if (frame.pins == 0) policy_->OnEvictable(it->second);
}

Status BufferPool::FlushAll() {
  for (auto& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      BP_RETURN_IF_ERROR(pager_->Write(frame.page_id, frame.page));
      frame.dirty = false;
      ++writebacks_;
      writebacks_c_->Increment();
    }
  }
  return pager_->Sync();
}

}  // namespace bestpeer::storm
