#include "storm/page.h"

#include <cstring>
#include <vector>

#include "util/hash.h"

namespace bestpeer::storm {

uint16_t Page::ReadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}
uint32_t Page::ReadU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}
uint64_t Page::ReadU64(size_t off) const {
  uint64_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}
void Page::WriteU16(size_t off, uint16_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}
void Page::WriteU32(size_t off, uint32_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}
void Page::WriteU64(size_t off, uint64_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}

void Page::Init(uint32_t page_id) {
  std::memset(data_, 0, kPageSize);
  WriteU32(0, kMagic);
  WriteU32(4, page_id);
  set_slot_count(0);
  set_free_off(static_cast<uint16_t>(kHeaderSize));
}

size_t Page::FreeSpace() const {
  size_t dir_start = kPageSize - kSlotEntrySize * slot_count();
  size_t gap = dir_start - free_off();
  // A fresh insert may need a new slot entry unless a tombstone is free.
  bool have_tombstone = false;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == kTombstone) {
      have_tombstone = true;
      break;
    }
  }
  if (!have_tombstone) {
    if (gap < kSlotEntrySize) return 0;
    gap -= kSlotEntrySize;
  }
  return gap;
}

size_t Page::FragmentedSpace() const {
  size_t live = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != kTombstone) live += SlotLen(s);
  }
  size_t used = free_off() - kHeaderSize;
  return used - live;
}

void Page::SetSlot(uint16_t slot, uint16_t offset, uint16_t len) {
  WriteU16(SlotDirPos(slot), offset);
  WriteU16(SlotDirPos(slot) + 2, len);
}

Result<uint16_t> Page::Insert(const uint8_t* data, uint16_t len) {
  // Find a reusable tombstone slot, if any.
  uint16_t slot = slot_count();
  bool reuse = false;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == kTombstone) {
      slot = s;
      reuse = true;
      break;
    }
  }
  size_t dir_start =
      kPageSize - kSlotEntrySize * (slot_count() + (reuse ? 0 : 1));
  if (free_off() + static_cast<size_t>(len) > dir_start) {
    return Status::ResourceExhausted("page full");
  }
  uint16_t off = free_off();
  std::memcpy(data_ + off, data, len);
  set_free_off(static_cast<uint16_t>(off + len));
  if (!reuse) set_slot_count(static_cast<uint16_t>(slot_count() + 1));
  SetSlot(slot, off, len);
  return slot;
}

Result<std::pair<const uint8_t*, uint16_t>> Page::Read(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range");
  }
  if (SlotOffset(slot) == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) + " deleted");
  }
  return std::make_pair(data_ + SlotOffset(slot), SlotLen(slot));
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range");
  }
  if (SlotOffset(slot) == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " already deleted");
  }
  SetSlot(slot, kTombstone, 0);
  return Status::OK();
}

bool Page::SlotLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != kTombstone;
}

void Page::Compact() {
  std::vector<uint8_t> scratch(kPageSize);
  uint16_t write_off = kHeaderSize;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == kTombstone) continue;
    uint16_t len = SlotLen(s);
    std::memcpy(scratch.data() + write_off, data_ + SlotOffset(s), len);
    SetSlot(s, write_off, len);
    write_off = static_cast<uint16_t>(write_off + len);
  }
  std::memcpy(data_ + kHeaderSize, scratch.data() + kHeaderSize,
              write_off - kHeaderSize);
  set_free_off(write_off);
}

uint64_t Page::ComputeChecksum() const {
  // Checksum covers everything except the checksum field itself.
  uint64_t h = Fnv1a64(data_, 16);
  h ^= Fnv1a64(data_ + kHeaderSize, kPageSize - kHeaderSize);
  return h;
}

void Page::UpdateChecksum() { WriteU64(16, ComputeChecksum()); }

bool Page::VerifyChecksum() const { return ReadU64(16) == ComputeChecksum(); }

}  // namespace bestpeer::storm
