#ifndef BESTPEER_STORM_REPLACEMENT_H_
#define BESTPEER_STORM_REPLACEMENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace bestpeer::storm {

/// Buffer-frame index.
using FrameId = size_t;

/// Pluggable page-replacement policy — the extensibility hook the StorM
/// papers (Bressan/Goh/Ooi/Tan, SIGMOD'99) are built around.
///
/// The policy tracks the set of *evictable* frames (unpinned). The buffer
/// pool calls:
///  - OnEvictable(f)  when a frame's pin count drops to zero,
///  - OnPinned(f)     when an evictable frame is pinned again,
///  - ChooseVictim()  to pick and remove the next frame to evict.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// The policy's registered name ("lru", "fifo", "clock", "lfu").
  virtual std::string_view name() const = 0;

  /// Frame became evictable (pin count hit zero).
  virtual void OnEvictable(FrameId frame) = 0;

  /// Frame is no longer evictable (pinned again).
  virtual void OnPinned(FrameId frame) = 0;

  /// Picks the next victim, removes it from the evictable set and returns
  /// it; std::nullopt when no frame is evictable.
  virtual std::optional<FrameId> ChooseVictim() = 0;

  /// Number of evictable frames currently tracked.
  virtual size_t evictable_count() const = 0;
};

/// Least-recently-unpinned eviction.
class LruPolicy : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "lru"; }
  void OnEvictable(FrameId frame) override;
  void OnPinned(FrameId frame) override;
  std::optional<FrameId> ChooseVictim() override;
  size_t evictable_count() const override { return order_.size(); }

 private:
  std::list<FrameId> order_;  // Front = least recently unpinned.
  std::unordered_map<FrameId, std::list<FrameId>::iterator> where_;
};

/// First-in-first-out: evicts in the order frames first became evictable;
/// re-pinning does not refresh position on re-entry.
class FifoPolicy : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  void OnEvictable(FrameId frame) override;
  void OnPinned(FrameId frame) override;
  std::optional<FrameId> ChooseVictim() override;
  size_t evictable_count() const override { return order_.size(); }

 private:
  std::list<FrameId> order_;
  std::unordered_map<FrameId, std::list<FrameId>::iterator> where_;
};

/// Second-chance clock: a ring of evictable frames with reference bits;
/// re-entering the evictable set sets the reference bit.
class ClockPolicy : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "clock"; }
  void OnEvictable(FrameId frame) override;
  void OnPinned(FrameId frame) override;
  std::optional<FrameId> ChooseVictim() override;
  size_t evictable_count() const override { return ring_.size(); }

 private:
  struct Entry {
    FrameId frame;
    bool referenced;
  };
  std::list<Entry> ring_;
  std::list<Entry>::iterator hand_ = ring_.end();
  std::unordered_map<FrameId, std::list<Entry>::iterator> where_;
};

/// Least-frequently-used: evicts the evictable frame with the fewest
/// lifetime uses (a use = one evictable->pinned->evictable round trip);
/// ties broken by least recent use.
class LfuPolicy : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "lfu"; }
  void OnEvictable(FrameId frame) override;
  void OnPinned(FrameId frame) override;
  std::optional<FrameId> ChooseVictim() override;
  size_t evictable_count() const override { return evictable_; }

 private:
  struct Info {
    uint64_t uses = 0;
    uint64_t last_tick = 0;
    bool evictable = false;
  };
  std::unordered_map<FrameId, Info> info_;
  size_t evictable_ = 0;
  uint64_t tick_ = 0;
};

/// Creates a policy by name; InvalidArgument for unknown names.
Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    std::string_view name);

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_REPLACEMENT_H_
