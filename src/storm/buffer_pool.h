#ifndef BESTPEER_STORM_BUFFER_POOL_H_
#define BESTPEER_STORM_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storm/page.h"
#include "storm/pager.h"
#include "storm/replacement.h"
#include "util/metrics.h"
#include "util/result.h"

namespace bestpeer::storm {

/// Buffer pool configuration.
struct BufferPoolOptions {
  /// Number of in-memory frames.
  size_t frames = 64;
  /// Replacement policy name: "lru", "fifo", "clock", "lfu".
  std::string policy = "lru";
  /// Metrics sink (not owned; must outlive the pool). nullptr routes
  /// increments to no-op handles.
  metrics::Registry* metrics = nullptr;
  /// Label value attached to this pool's instruments as {node=<label>},
  /// so per-node pools stay distinguishable in one registry. Empty emits
  /// unlabeled instruments.
  std::string metrics_label;
};

class BufferPool;

/// RAII pin on a buffered page; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  /// The pinned page; valid while the guard lives.
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  PageId id() const { return id_; }

  /// Marks the page dirty so it is written back before eviction.
  void MarkDirty() { dirty_ = true; }

  /// Explicit early release (also performed by the destructor).
  void Release();

  /// True iff the guard holds a pin.
  bool valid() const { return page_ != nullptr; }

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = 0;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

/// Caches pages of a Pager in a fixed set of frames with a pluggable
/// replacement policy; pin-counted, write-back.
class BufferPool {
 public:
  /// Creates a pool over `pager` (not owned; must outlive the pool).
  static Result<std::unique_ptr<BufferPool>> Create(
      Pager* pager, const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page via the pager, formats it and pins it.
  Result<PageGuard> New();

  /// Unpins; normally called through PageGuard.
  void Unpin(PageId id, bool dirty);

  /// Writes back all dirty pages (pinned ones included) and syncs.
  Status FlushAll();

  /// Statistics.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t writebacks() const { return writebacks_; }
  size_t frame_count() const { return frames_.size(); }
  std::string_view policy_name() const { return policy_->name(); }
  Pager* pager() { return pager_; }

 private:
  struct Frame {
    PageId page_id = 0;
    bool in_use = false;
    bool dirty = false;
    int pins = 0;
    Page page;
  };

  BufferPool(Pager* pager, std::unique_ptr<ReplacementPolicy> policy,
             const BufferPoolOptions& options);

  /// Finds a free frame, evicting if necessary.
  Result<FrameId> AcquireFrame();

  Pager* pager_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<PageId, FrameId> page_table_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t writebacks_ = 0;

  metrics::Counter* hits_c_ = metrics::Counter::Noop();
  metrics::Counter* misses_c_ = metrics::Counter::Noop();
  metrics::Counter* evictions_c_ = metrics::Counter::Noop();
  metrics::Counter* writebacks_c_ = metrics::Counter::Noop();
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_BUFFER_POOL_H_
