#ifndef BESTPEER_STORM_WAL_H_
#define BESTPEER_STORM_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "storm/object_store.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::storm {

/// Logical write-ahead log for a Storm store: every Put/Delete is
/// appended (and fsynced) before it is applied, so a crash between the
/// append and the page flush loses nothing. Recovery replays the log
/// idempotently on open; a checkpoint (after flushing all pages)
/// truncates it.
///
/// Record format: [u8 type][payload][u64 FNV-1a checksum of type+payload],
/// each length-prefixed by a u32. Replay stops cleanly at the first
/// torn/corrupt record (the standard crash-tail rule).
class WriteAheadLog {
 public:
  enum class RecordType : uint8_t {
    kPut = 1,
    kDelete = 2,
    kCheckpoint = 3,
  };

  /// A decoded log record handed to the replay visitor.
  struct Record {
    RecordType type;
    ObjectId object_id = 0;
    Bytes content;  // Put only.
  };

  using ReplayVisitor = std::function<Status(const Record&)>;

  /// Opens (creating if needed) the log at `path`.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends (and flushes) a Put record.
  Status AppendPut(ObjectId id, const Bytes& content);

  /// Appends (and flushes) a Delete record.
  Status AppendDelete(ObjectId id);

  /// Replays every intact record from the start of the log, newest
  /// checkpoint last; stops silently at the first torn record. Returns
  /// the number of records visited.
  Result<size_t> Replay(const ReplayVisitor& visitor);

  /// Truncates the log after a successful checkpoint (all dirty state
  /// flushed by the caller first).
  Status Checkpoint();

  /// Current log size in bytes.
  Result<size_t> SizeBytes() const;

  uint64_t records_appended() const { return records_appended_; }

 private:
  WriteAheadLog(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  Status AppendRecord(RecordType type, const Bytes& payload);

  std::FILE* file_;
  std::string path_;
  uint64_t records_appended_ = 0;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_WAL_H_
