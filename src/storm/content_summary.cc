#include "storm/content_summary.h"

#include <algorithm>

#include "util/hash.h"
#include "util/strings.h"

namespace bestpeer::storm {

namespace {

/// Double hashing: bit_i = (h1 + i*h2) mod nbits, h2 forced odd so the
/// probe sequence covers the table.
void BloomBits(std::string_view keyword, size_t num_hashes, size_t nbits,
               const std::function<bool(size_t)>& visit) {
  uint64_t h1 = Fnv1a64(keyword);
  uint64_t h2 = Mix64(h1) | 1;
  for (size_t i = 0; i < num_hashes; ++i) {
    if (!visit((h1 + i * h2) % nbits)) return;
  }
}

}  // namespace

ContentSummary ContentSummary::Build(const KeywordIndex& index,
                                     uint64_t epoch,
                                     const BuildOptions& options) {
  ContentSummary summary;
  summary.epoch_ = epoch;
  summary.keyword_count_ = index.keyword_count();
  summary.num_hashes_ = static_cast<uint8_t>(
      std::clamp<size_t>(options.num_hashes, 1, kMaxHashes));
  size_t nbits = std::max<size_t>(64, summary.keyword_count_ *
                                          std::max<size_t>(1, options.bits_per_key));
  nbits = (nbits + 63) / 64 * 64;
  nbits = std::min(nbits, kMaxFilterWords * 64);
  summary.bits_.assign(nbits / 64, 0);

  std::vector<std::pair<std::string, uint32_t>> top;
  index.ForEachKeyword([&](std::string_view keyword, size_t count) {
    BloomBits(keyword, summary.num_hashes_, nbits, [&](size_t bit) {
      summary.bits_[bit / 64] |= uint64_t{1} << (bit % 64);
      return true;
    });
    top.emplace_back(std::string(keyword), static_cast<uint32_t>(count));
  });
  size_t keep = std::min(options.top_k, std::min(kMaxTopKeywords, top.size()));
  std::partial_sort(top.begin(), top.begin() + static_cast<ptrdiff_t>(keep),
                    top.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  top.resize(keep);
  summary.top_keywords_ = std::move(top);
  return summary;
}

bool ContentSummary::MayContain(std::string_view keyword) const {
  if (keyword_count_ == 0 || bits_.empty()) return false;
  std::string folded = ToLower(keyword);
  size_t nbits = bits_.size() * 64;
  bool present = true;
  BloomBits(folded, num_hashes_, nbits, [&](size_t bit) {
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) {
      present = false;
      return false;
    }
    return true;
  });
  return present;
}

bool ContentSummary::MayMatch(const QueryExpr& query) const {
  for (const auto& branch : query.dnf()) {
    bool branch_possible = true;
    for (const auto& term : branch) {
      if (!MayContain(term)) {
        branch_possible = false;
        break;
      }
    }
    if (branch_possible && !branch.empty()) return true;
  }
  return false;
}

Bytes ContentSummary::Encode() const {
  BinaryWriter writer;
  writer.WriteVarint(epoch_);
  writer.WriteVarint(keyword_count_);
  writer.WriteU8(num_hashes_);
  writer.WriteVarint(bits_.size());
  for (uint64_t word : bits_) writer.WriteU64(word);
  writer.WriteVarint(top_keywords_.size());
  for (const auto& [keyword, count] : top_keywords_) {
    writer.WriteString(keyword);
    writer.WriteVarint(count);
  }
  return writer.Take();
}

Result<ContentSummary> ContentSummary::Decode(const Bytes& payload) {
  BinaryReader reader(payload);
  ContentSummary summary;
  BP_ASSIGN_OR_RETURN(summary.epoch_, reader.ReadVarint());
  BP_ASSIGN_OR_RETURN(summary.keyword_count_, reader.ReadVarint());
  BP_ASSIGN_OR_RETURN(summary.num_hashes_, reader.ReadU8());
  if (summary.num_hashes_ < 1 || summary.num_hashes_ > kMaxHashes) {
    return Status::Corruption("summary hash count out of range");
  }
  BP_ASSIGN_OR_RETURN(uint64_t words, reader.ReadVarint());
  if (words == 0 || words > kMaxFilterWords) {
    return Status::Corruption("summary filter size out of range");
  }
  summary.bits_.reserve(words);
  for (uint64_t i = 0; i < words; ++i) {
    BP_ASSIGN_OR_RETURN(uint64_t word, reader.ReadU64());
    summary.bits_.push_back(word);
  }
  BP_ASSIGN_OR_RETURN(uint64_t top, reader.ReadVarint());
  if (top > kMaxTopKeywords) {
    return Status::Corruption("summary top-keyword count out of range");
  }
  summary.top_keywords_.reserve(top);
  for (uint64_t i = 0; i < top; ++i) {
    BP_ASSIGN_OR_RETURN(std::string keyword, reader.ReadString());
    BP_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    summary.top_keywords_.emplace_back(std::move(keyword),
                                       static_cast<uint32_t>(count));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after summary");
  }
  return summary;
}

}  // namespace bestpeer::storm
