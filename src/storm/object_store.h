#ifndef BESTPEER_STORM_OBJECT_STORE_H_
#define BESTPEER_STORM_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "storm/buffer_pool.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::storm {

/// Identifier of a stored object.
using ObjectId = uint64_t;

/// Object storage over slotted pages: each object is split into chunks,
/// one record per chunk, each record carrying (object id, chunk index,
/// chunk count). The directory is rebuilt by a full scan at Open(), so a
/// store survives process restarts with no separate catalog structure.
class ObjectStore {
 public:
  /// Chunk payload size; objects larger than this span multiple records.
  static constexpr size_t kChunkDataSize = 3500;
  /// Per-record header: id (8) + chunk (2) + nchunks (2).
  static constexpr size_t kRecordHeaderSize = 12;

  /// Opens a store over `pool` (not owned), scanning existing pages to
  /// rebuild the object directory.
  static Result<std::unique_ptr<ObjectStore>> Open(BufferPool* pool);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Stores a new object; AlreadyExists if the id is taken.
  Status Put(ObjectId id, const Bytes& data);

  /// Reads an object back.
  Result<Bytes> Get(ObjectId id);

  /// Removes an object.
  Status Delete(ObjectId id);

  /// True iff an object with this id exists.
  bool Contains(ObjectId id) const;

  /// Number of stored objects.
  size_t object_count() const { return directory_.size(); }

  /// All object ids in ascending order.
  std::vector<ObjectId> ListIds() const;

  /// Invokes `fn` for every object (ascending id); stops on error.
  Status ForEach(const std::function<Status(ObjectId, const Bytes&)>& fn);

 private:
  struct Loc {
    PageId page;
    uint16_t slot;
  };

  explicit ObjectStore(BufferPool* pool) : pool_(pool) {}

  Status ScanExisting();

  /// Inserts one chunk record, finding or allocating a page with space.
  Result<Loc> InsertRecord(const Bytes& record);

  BufferPool* pool_;
  /// object id -> chunk locations in chunk order.
  std::map<ObjectId, std::vector<Loc>> directory_;
  /// Approximate free bytes per data page (heuristic allocator state).
  std::map<PageId, size_t> free_space_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_OBJECT_STORE_H_
