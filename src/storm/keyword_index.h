#ifndef BESTPEER_STORM_KEYWORD_INDEX_H_
#define BESTPEER_STORM_KEYWORD_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "storm/object_store.h"

namespace bestpeer::storm {

/// In-memory inverted index: keyword -> object ids. Maintained by the
/// Storm facade as objects are added/removed; gives the fast search path
/// next to the full-scan path the paper's StorM agent uses.
class KeywordIndex {
 public:
  /// Indexes the tokens of `text` under `id`.
  void Add(ObjectId id, std::string_view text);

  /// Removes `id`'s postings for the tokens of `text`.
  void Remove(ObjectId id, std::string_view text);

  /// Ids of objects containing `keyword` (ascending).
  std::vector<ObjectId> Search(std::string_view keyword) const;

  /// Number of distinct indexed keywords.
  size_t keyword_count() const { return postings_.size(); }

  /// Number of postings for one keyword.
  size_t PostingCount(std::string_view keyword) const;

  void Clear() { postings_.clear(); }

 private:
  std::map<std::string, std::set<ObjectId>, std::less<>> postings_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_KEYWORD_INDEX_H_
