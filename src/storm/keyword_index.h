#ifndef BESTPEER_STORM_KEYWORD_INDEX_H_
#define BESTPEER_STORM_KEYWORD_INDEX_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "storm/object_store.h"

namespace bestpeer::storm {

/// In-memory inverted index: keyword -> sorted posting-list vector of
/// object ids. Maintained by the Storm facade as objects are
/// added/removed; gives the fast search path next to the full-scan path
/// the paper's StorM agent uses.
///
/// The index remembers the token set it indexed per object, so removal
/// needs only the id — callers can no longer leak postings by passing
/// content that differs from what was Add()ed.
class KeywordIndex {
 public:
  /// Indexes the tokens of `text` under `id`. Re-adding an id replaces
  /// its previous postings (update semantics), never accumulates them.
  void Add(ObjectId id, std::string_view text);

  /// Removes every posting of `id`, using the token set recorded at
  /// Add time. No-op for unknown ids.
  void Remove(ObjectId id);

  /// Ids of objects containing `keyword` (ascending copy).
  std::vector<ObjectId> Search(std::string_view keyword) const;

  /// Borrowed view of one keyword's sorted posting list; nullptr when the
  /// keyword is not indexed. Invalidated by the next Add/Remove.
  const std::vector<ObjectId>* Postings(std::string_view keyword) const;

  /// Number of distinct indexed keywords.
  size_t keyword_count() const { return postings_.size(); }

  /// Number of indexed documents.
  size_t document_count() const { return doc_tokens_.size(); }

  /// Number of postings for one keyword.
  size_t PostingCount(std::string_view keyword) const;

  /// Visits every indexed keyword with its posting count (keyword order).
  void ForEachKeyword(
      const std::function<void(std::string_view, size_t)>& fn) const;

  /// Intersects two sorted posting lists into `out` by galloping
  /// (exponential + binary) search from the smaller into the larger.
  /// Adds the number of postings probed in `b` to `*probes` (the CPU
  /// accounting unit of the index search path). `a` should be the
  /// smaller list; the result is correct either way.
  static void Intersect(const std::vector<ObjectId>& a,
                        const std::vector<ObjectId>& b,
                        std::vector<ObjectId>* out, size_t* probes);

  void Clear() {
    postings_.clear();
    doc_tokens_.clear();
  }

 private:
  std::map<std::string, std::vector<ObjectId>, std::less<>> postings_;
  /// Deduplicated, sorted token list recorded per indexed object.
  std::map<ObjectId, std::vector<std::string>> doc_tokens_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_KEYWORD_INDEX_H_
