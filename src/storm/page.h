#ifndef BESTPEER_STORM_PAGE_H_
#define BESTPEER_STORM_PAGE_H_

#include <cstdint>
#include <utility>

#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::storm {

/// A 4 KiB slotted page, the unit of storage and buffering in StorM.
///
/// Layout:
///   [0..4)    magic
///   [4..8)    page id
///   [8..10)   slot count
///   [10..12)  free-space offset (start of unused region)
///   [12..16)  reserved
///   [16..24)  checksum (FNV-1a over the rest of the page)
///   [24..free_off)            record data, append-only until Compact()
///   [4096-4*nslots..4096)     slot directory, growing downwards;
///                             each slot is {offset:u16, len:u16};
///                             offset 0xFFFF marks a tombstone.
class Page {
 public:
  static constexpr size_t kPageSize = 4096;
  static constexpr size_t kHeaderSize = 24;
  static constexpr size_t kSlotEntrySize = 4;
  static constexpr uint16_t kTombstone = 0xFFFF;
  static constexpr uint32_t kMagic = 0x53744F52;  // "StOR"

  /// Maximum record payload a freshly formatted page can hold.
  static constexpr size_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotEntrySize;

  Page() = default;

  /// Formats the page as empty with the given id.
  void Init(uint32_t page_id);

  uint32_t page_id() const { return ReadU32(4); }
  uint16_t slot_count() const { return ReadU16(8); }

  /// True iff the magic field is valid (page has been formatted).
  bool IsFormatted() const { return ReadU32(0) == kMagic; }

  /// Contiguous bytes available for a new record, accounting for the slot
  /// directory entry a fresh insert may need.
  size_t FreeSpace() const;

  /// Bytes reclaimable by Compact() (space held by deleted records).
  size_t FragmentedSpace() const;

  /// Inserts a record; returns its slot number. Reuses tombstone slots.
  /// Fails with ResourceExhausted when the record does not fit (callers
  /// should Compact() and retry, or use another page).
  Result<uint16_t> Insert(const uint8_t* data, uint16_t len);

  /// Returns a (pointer, length) view of a live record.
  Result<std::pair<const uint8_t*, uint16_t>> Read(uint16_t slot) const;

  /// Tombstones a live record.
  Status Delete(uint16_t slot);

  /// True iff `slot` exists and holds a live record.
  bool SlotLive(uint16_t slot) const;

  /// Rewrites the data area to squeeze out deleted records. Slot numbers
  /// are stable across compaction.
  void Compact();

  /// Recomputes and stores the checksum; call before writing to disk.
  void UpdateChecksum();

  /// Verifies the stored checksum; call after reading from disk.
  bool VerifyChecksum() const;

  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }

 private:
  uint16_t ReadU16(size_t off) const;
  uint32_t ReadU32(size_t off) const;
  uint64_t ReadU64(size_t off) const;
  void WriteU16(size_t off, uint16_t v);
  void WriteU32(size_t off, uint32_t v);
  void WriteU64(size_t off, uint64_t v);

  uint16_t free_off() const { return ReadU16(10); }
  void set_free_off(uint16_t v) { WriteU16(10, v); }
  void set_slot_count(uint16_t v) { WriteU16(8, v); }

  size_t SlotDirPos(uint16_t slot) const {
    return kPageSize - kSlotEntrySize * (static_cast<size_t>(slot) + 1);
  }
  uint16_t SlotOffset(uint16_t slot) const { return ReadU16(SlotDirPos(slot)); }
  uint16_t SlotLen(uint16_t slot) const {
    return ReadU16(SlotDirPos(slot) + 2);
  }
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t len);

  uint64_t ComputeChecksum() const;

  uint8_t data_[kPageSize] = {};
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_PAGE_H_
