#ifndef BESTPEER_STORM_STORM_H_
#define BESTPEER_STORM_STORM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storm/buffer_pool.h"
#include "storm/keyword_index.h"
#include "storm/object_store.h"
#include "storm/pager.h"
#include "storm/wal.h"
#include "util/result.h"

namespace bestpeer::storm {

/// Storm facade configuration.
struct StormOptions {
  /// File path for persistence; empty runs fully in memory.
  std::string path;
  /// Buffer-pool frames.
  size_t buffer_frames = 64;
  /// Replacement policy: "lru", "fifo", "clock", "lfu".
  std::string replacement = "lru";
  /// Maintain the in-memory keyword index over object contents.
  bool build_index = true;
  /// Cache ScanSearch results per query text; invalidated by any Put or
  /// Delete. Turns repeated identical searches into O(1) lookups.
  bool enable_query_cache = false;
  /// Maximum cached queries (LRU eviction).
  size_t query_cache_entries = 64;
  /// Write-ahead log path; empty disables the WAL. With a WAL, every
  /// Put/Delete is durable the moment it returns — even over an
  /// in-memory pager (the log alone reconstructs the store on reopen).
  std::string wal_path;
  /// Metrics sink forwarded to the buffer pool (not owned; must outlive
  /// the store). nullptr routes increments to no-op handles.
  metrics::Registry* metrics = nullptr;
  /// Label value for this store's instruments ({node=<label>}); empty
  /// emits unlabeled instruments.
  std::string metrics_label;
};

/// The storage manager each BestPeer node runs (the paper's "StorM, a
/// 100% Java persistent storage manager"; here a C++ engine with the same
/// role). Stores shared objects and serves the keyword searches issued by
/// StorM agents.
class Storm {
 public:
  /// Result of a full-scan keyword search.
  struct ScanResult {
    std::vector<ObjectId> matches;
    /// Objects examined — the quantity the simulation charges CPU for.
    /// Zero when the result was served from the query cache.
    size_t objects_scanned = 0;
    /// True iff the result came from the query cache.
    bool from_cache = false;
  };

  /// Opens (or creates) a store.
  static Result<std::unique_ptr<Storm>> Open(const StormOptions& options);

  Storm(const Storm&) = delete;
  Storm& operator=(const Storm&) = delete;

  /// Stores a new object whose payload is `data` (text payloads are
  /// indexed when build_index is on).
  Status Put(ObjectId id, const Bytes& data);

  /// Reads an object.
  Result<Bytes> Get(ObjectId id);

  /// Deletes an object.
  Status Delete(ObjectId id);

  /// Replaces an existing object's content as one atomic mutation: on
  /// success the store holds the new content, on failure the old content
  /// is retained untouched, and the mutation epoch bumps exactly once
  /// (only on success). NotFound if the object does not exist.
  Status Update(ObjectId id, const Bytes& data);

  /// True iff the object exists.
  bool Contains(ObjectId id) const { return objects_->Contains(id); }

  /// Full-scan search: examines every object's content against `query`,
  /// a QueryExpr ("a b OR c": whole-token, case-insensitive terms).
  /// This is the code path the paper's StorM agent runs ("makes a
  /// comparison for each object stored in the Shared-StorM database with
  /// its query"). With enable_query_cache, repeated identical queries
  /// are answered from cache until the store mutates.
  Result<ScanResult> ScanSearch(std::string_view query);

  /// Index-backed search (fast path; requires build_index). Evaluates
  /// the same query language via sorted-posting-list intersections
  /// (smallest list first, galloping search) and unions. When
  /// `postings_touched` is non-null it receives the number of postings
  /// examined — the CPU accounting unit of the index path, the analogue
  /// of ScanResult::objects_scanned.
  Result<std::vector<ObjectId>> IndexSearch(
      std::string_view query, size_t* postings_touched = nullptr) const;

  /// Monotone counter bumped by every Put/Delete (cache validity token).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Invoked with the new epoch after every Put/Delete/Update bump (one
  /// fire per logical mutation — Update counts as a single mutation).
  /// The node layer hooks this to invalidate result caches.
  void SetMutationListener(std::function<void(uint64_t)> listener) {
    mutation_listener_ = std::move(listener);
  }

  /// Query-cache statistics.
  uint64_t query_cache_hits() const { return cache_hits_; }
  uint64_t query_cache_misses() const { return cache_misses_; }
  /// Live query-cache entries. Stale-epoch entries are purged eagerly on
  /// every mutation, so this never counts unreachable results.
  size_t query_cache_size() const { return query_cache_.size(); }

  /// Writes all dirty state back to the pager.
  Status Flush();

  /// Flushes everything and truncates the WAL (no-op without a WAL).
  /// After a checkpoint, recovery starts from the flushed pages.
  Status Checkpoint();

  /// The WAL, if configured (for stats/tests).
  WriteAheadLog* wal() { return wal_.get(); }

  size_t object_count() const { return objects_->object_count(); }
  std::vector<ObjectId> ListIds() const { return objects_->ListIds(); }
  BufferPool& buffer_pool() { return *pool_; }
  const KeywordIndex& index() const { return index_; }

 private:
  Storm() = default;

  /// One logical mutation: bumps the epoch, drops the (now entirely
  /// stale) query cache, and notifies the listener.
  void BumpEpoch();

  struct CachedQuery {
    uint64_t epoch = 0;
    std::vector<ObjectId> matches;
    uint64_t last_used = 0;
  };

  StormOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ObjectStore> objects_;
  std::unique_ptr<WriteAheadLog> wal_;
  KeywordIndex index_;
  std::function<void(uint64_t)> mutation_listener_;
  std::map<std::string, CachedQuery, std::less<>> query_cache_;
  uint64_t mutation_epoch_ = 0;
  uint64_t cache_clock_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_STORM_H_
