#include "storm/storm.h"

#include <algorithm>
#include <set>

#include "storm/query_expr.h"
#include "util/strings.h"

namespace bestpeer::storm {

Result<std::unique_ptr<Storm>> Storm::Open(const StormOptions& options) {
  auto storm = std::unique_ptr<Storm>(new Storm());
  storm->options_ = options;
  if (options.path.empty()) {
    storm->pager_ = std::make_unique<MemPager>();
  } else {
    BP_ASSIGN_OR_RETURN(auto fp, FilePager::Open(options.path));
    storm->pager_ = std::move(fp);
  }
  BufferPoolOptions pool_options;
  pool_options.frames = options.buffer_frames;
  pool_options.policy = options.replacement;
  pool_options.metrics = options.metrics;
  pool_options.metrics_label = options.metrics_label;
  BP_ASSIGN_OR_RETURN(storm->pool_,
                      BufferPool::Create(storm->pager_.get(), pool_options));
  BP_ASSIGN_OR_RETURN(storm->objects_, ObjectStore::Open(storm->pool_.get()));
  if (options.build_index) {
    BP_RETURN_IF_ERROR(storm->objects_->ForEach(
        [&storm](ObjectId id, const Bytes& data) {
          storm->index_.Add(id, ToString(data));
          return Status::OK();
        }));
  }
  if (!options.wal_path.empty()) {
    BP_ASSIGN_OR_RETURN(storm->wal_, WriteAheadLog::Open(options.wal_path));
    // Crash recovery: re-apply every intact logged operation that is not
    // yet reflected in the base store. Replay is idempotent.
    BP_RETURN_IF_ERROR(
        storm->wal_
            ->Replay([&storm](const WriteAheadLog::Record& record) {
              switch (record.type) {
                case WriteAheadLog::RecordType::kPut:
                  if (!storm->objects_->Contains(record.object_id)) {
                    BP_RETURN_IF_ERROR(storm->objects_->Put(
                        record.object_id, record.content));
                    if (storm->options_.build_index) {
                      storm->index_.Add(record.object_id,
                                        ToString(record.content));
                    }
                  }
                  break;
                case WriteAheadLog::RecordType::kDelete:
                  if (storm->objects_->Contains(record.object_id)) {
                    storm->index_.Remove(record.object_id);
                    BP_RETURN_IF_ERROR(
                        storm->objects_->Delete(record.object_id));
                  }
                  break;
                case WriteAheadLog::RecordType::kCheckpoint:
                  break;
              }
              return Status::OK();
            })
            .status());
  }
  return storm;
}

void Storm::BumpEpoch() {
  ++mutation_epoch_;
  // Every cached entry was computed at an older epoch and can never be
  // served again; dropping them now keeps dead results from counting
  // toward query_cache_entries and evicting fresh entries.
  query_cache_.clear();
  if (mutation_listener_) mutation_listener_(mutation_epoch_);
}

Status Storm::Put(ObjectId id, const Bytes& data) {
  if (objects_->Contains(id)) {
    return Status::AlreadyExists("object " + std::to_string(id));
  }
  // Log before apply: a crash after the append replays the Put on open.
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->AppendPut(id, data));
  BP_RETURN_IF_ERROR(objects_->Put(id, data));
  if (options_.build_index) index_.Add(id, ToString(data));
  BumpEpoch();
  return Status::OK();
}

Result<Bytes> Storm::Get(ObjectId id) { return objects_->Get(id); }

Status Storm::Delete(ObjectId id) {
  if (!objects_->Contains(id)) {
    return Status::NotFound("object " + std::to_string(id));
  }
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->AppendDelete(id));
  index_.Remove(id);
  BP_RETURN_IF_ERROR(objects_->Delete(id));
  BumpEpoch();
  return Status::OK();
}

Status Storm::Update(ObjectId id, const Bytes& data) {
  if (!objects_->Contains(id)) {
    return Status::NotFound("object " + std::to_string(id));
  }
  // Reject payloads the store can never hold before touching anything,
  // so the common Put failure mode cannot strand a half-applied update.
  if (data.size() > ObjectStore::kChunkDataSize * 0xFFFF) {
    return Status::InvalidArgument("object too large");
  }
  BP_ASSIGN_OR_RETURN(Bytes old_data, objects_->Get(id));
  // Log before apply, matching Put/Delete: replay is idempotent and the
  // delete+put pair converges the store to the new content.
  if (wal_ != nullptr) {
    BP_RETURN_IF_ERROR(wal_->AppendDelete(id));
    BP_RETURN_IF_ERROR(wal_->AppendPut(id, data));
  }
  BP_RETURN_IF_ERROR(objects_->Delete(id));
  Status put = objects_->Put(id, data);
  if (!put.ok()) {
    // Restore the old content so the failed update is a clean no-op
    // with no epoch bump.
    Status rollback = objects_->Put(id, old_data);
    if (rollback.ok()) return put;
    // Rollback also failed (pager I/O): the object is gone. Drop its
    // postings so index and store agree, and report the one mutation
    // that did happen.
    index_.Remove(id);
    BumpEpoch();
    return put;
  }
  // Add() replaces the old postings of id wholesale, so the index never
  // keeps tokens from the previous content.
  if (options_.build_index) index_.Add(id, ToString(data));
  BumpEpoch();
  return Status::OK();
}

Result<Storm::ScanResult> Storm::ScanSearch(std::string_view query) {
  BP_ASSIGN_OR_RETURN(QueryExpr expr, QueryExpr::Parse(query));
  expr.Normalize();
  const std::string canonical = expr.ToString();

  if (options_.enable_query_cache) {
    auto it = query_cache_.find(canonical);
    if (it != query_cache_.end()) {
      if (it->second.epoch == mutation_epoch_) {
        ++cache_hits_;
        it->second.last_used = ++cache_clock_;
        ScanResult cached;
        cached.matches = it->second.matches;
        cached.objects_scanned = 0;
        cached.from_cache = true;
        return cached;
      }
      // Stale epoch: BumpEpoch() clears the cache eagerly so this should
      // be unreachable, but purge defensively rather than let a dead
      // entry occupy capacity.
      query_cache_.erase(it);
    }
    ++cache_misses_;
  }

  ScanResult result;
  BP_RETURN_IF_ERROR(
      objects_->ForEach([&result, &expr](ObjectId id, const Bytes& data) {
        ++result.objects_scanned;
        if (expr.Matches(ToString(data))) {
          result.matches.push_back(id);
        }
        return Status::OK();
      }));

  if (options_.enable_query_cache) {
    if (query_cache_.size() >= options_.query_cache_entries &&
        query_cache_.find(canonical) == query_cache_.end()) {
      // Evict the least recently used entry.
      auto victim = query_cache_.begin();
      for (auto it = query_cache_.begin(); it != query_cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      query_cache_.erase(victim);
    }
    CachedQuery entry;
    entry.epoch = mutation_epoch_;
    entry.matches = result.matches;
    entry.last_used = ++cache_clock_;
    query_cache_[canonical] = std::move(entry);
  }
  return result;
}

Result<std::vector<ObjectId>> Storm::IndexSearch(
    std::string_view query, size_t* postings_touched) const {
  if (postings_touched != nullptr) *postings_touched = 0;
  if (!options_.build_index) {
    return Status::FailedPrecondition("keyword index disabled");
  }
  BP_ASSIGN_OR_RETURN(QueryExpr expr, QueryExpr::Parse(query));
  expr.Normalize();  // Dedup terms so no posting list intersects twice.
  std::set<ObjectId> results;
  std::vector<ObjectId> acc;
  std::vector<ObjectId> merged;
  for (const auto& branch : expr.dnf()) {
    // Gather every AND term's posting list; a term with no postings
    // empties the whole branch without touching any list.
    std::vector<const std::vector<ObjectId>*> lists;
    lists.reserve(branch.size());
    bool dead_branch = false;
    for (const auto& term : branch) {
      const std::vector<ObjectId>* postings = index_.Postings(term);
      if (postings == nullptr) {
        dead_branch = true;
        break;
      }
      lists.push_back(postings);
    }
    if (dead_branch || lists.empty()) continue;
    // Intersect smallest-first: the accumulator can only shrink, so
    // every later gallop runs from the rarest candidate set.
    std::sort(lists.begin(), lists.end(),
              [](const std::vector<ObjectId>* a, const std::vector<ObjectId>* b) {
                return a->size() < b->size();
              });
    acc = *lists.front();
    if (postings_touched != nullptr) *postings_touched += acc.size();
    for (size_t t = 1; t < lists.size() && !acc.empty(); ++t) {
      KeywordIndex::Intersect(acc, *lists[t], &merged, postings_touched);
      acc.swap(merged);
    }
    results.insert(acc.begin(), acc.end());
  }
  return std::vector<ObjectId>(results.begin(), results.end());
}

Status Storm::Flush() { return pool_->FlushAll(); }

Status Storm::Checkpoint() {
  BP_RETURN_IF_ERROR(Flush());
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->Checkpoint());
  return Status::OK();
}

}  // namespace bestpeer::storm
