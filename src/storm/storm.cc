#include "storm/storm.h"

#include <algorithm>
#include <set>

#include "storm/query_expr.h"
#include "util/strings.h"

namespace bestpeer::storm {

Result<std::unique_ptr<Storm>> Storm::Open(const StormOptions& options) {
  auto storm = std::unique_ptr<Storm>(new Storm());
  storm->options_ = options;
  if (options.path.empty()) {
    storm->pager_ = std::make_unique<MemPager>();
  } else {
    BP_ASSIGN_OR_RETURN(auto fp, FilePager::Open(options.path));
    storm->pager_ = std::move(fp);
  }
  BufferPoolOptions pool_options;
  pool_options.frames = options.buffer_frames;
  pool_options.policy = options.replacement;
  pool_options.metrics = options.metrics;
  pool_options.metrics_label = options.metrics_label;
  BP_ASSIGN_OR_RETURN(storm->pool_,
                      BufferPool::Create(storm->pager_.get(), pool_options));
  BP_ASSIGN_OR_RETURN(storm->objects_, ObjectStore::Open(storm->pool_.get()));
  if (options.build_index) {
    BP_RETURN_IF_ERROR(storm->objects_->ForEach(
        [&storm](ObjectId id, const Bytes& data) {
          storm->index_.Add(id, ToString(data));
          return Status::OK();
        }));
  }
  if (!options.wal_path.empty()) {
    BP_ASSIGN_OR_RETURN(storm->wal_, WriteAheadLog::Open(options.wal_path));
    // Crash recovery: re-apply every intact logged operation that is not
    // yet reflected in the base store. Replay is idempotent.
    BP_RETURN_IF_ERROR(
        storm->wal_
            ->Replay([&storm](const WriteAheadLog::Record& record) {
              switch (record.type) {
                case WriteAheadLog::RecordType::kPut:
                  if (!storm->objects_->Contains(record.object_id)) {
                    BP_RETURN_IF_ERROR(storm->objects_->Put(
                        record.object_id, record.content));
                    if (storm->options_.build_index) {
                      storm->index_.Add(record.object_id,
                                        ToString(record.content));
                    }
                  }
                  break;
                case WriteAheadLog::RecordType::kDelete:
                  if (storm->objects_->Contains(record.object_id)) {
                    if (storm->options_.build_index) {
                      auto data = storm->objects_->Get(record.object_id);
                      if (data.ok()) {
                        storm->index_.Remove(record.object_id,
                                             ToString(data.value()));
                      }
                    }
                    BP_RETURN_IF_ERROR(
                        storm->objects_->Delete(record.object_id));
                  }
                  break;
                case WriteAheadLog::RecordType::kCheckpoint:
                  break;
              }
              return Status::OK();
            })
            .status());
  }
  return storm;
}

Status Storm::Put(ObjectId id, const Bytes& data) {
  if (objects_->Contains(id)) {
    return Status::AlreadyExists("object " + std::to_string(id));
  }
  // Log before apply: a crash after the append replays the Put on open.
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->AppendPut(id, data));
  BP_RETURN_IF_ERROR(objects_->Put(id, data));
  if (options_.build_index) index_.Add(id, ToString(data));
  ++mutation_epoch_;
  if (mutation_listener_) mutation_listener_(mutation_epoch_);
  return Status::OK();
}

Result<Bytes> Storm::Get(ObjectId id) { return objects_->Get(id); }

Status Storm::Delete(ObjectId id) {
  if (!objects_->Contains(id)) {
    return Status::NotFound("object " + std::to_string(id));
  }
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->AppendDelete(id));
  if (options_.build_index) {
    auto data = objects_->Get(id);
    if (data.ok()) index_.Remove(id, ToString(data.value()));
  }
  BP_RETURN_IF_ERROR(objects_->Delete(id));
  ++mutation_epoch_;
  if (mutation_listener_) mutation_listener_(mutation_epoch_);
  return Status::OK();
}

Status Storm::Update(ObjectId id, const Bytes& data) {
  if (!objects_->Contains(id)) {
    return Status::NotFound("object " + std::to_string(id));
  }
  BP_RETURN_IF_ERROR(Delete(id));
  return Put(id, data);
}

Result<Storm::ScanResult> Storm::ScanSearch(std::string_view query) {
  BP_ASSIGN_OR_RETURN(QueryExpr expr, QueryExpr::Parse(query));
  expr.Normalize();
  const std::string canonical = expr.ToString();

  if (options_.enable_query_cache) {
    auto it = query_cache_.find(canonical);
    if (it != query_cache_.end() && it->second.epoch == mutation_epoch_) {
      ++cache_hits_;
      it->second.last_used = ++cache_clock_;
      ScanResult cached;
      cached.matches = it->second.matches;
      cached.objects_scanned = 0;
      cached.from_cache = true;
      return cached;
    }
    ++cache_misses_;
  }

  ScanResult result;
  BP_RETURN_IF_ERROR(
      objects_->ForEach([&result, &expr](ObjectId id, const Bytes& data) {
        ++result.objects_scanned;
        if (expr.Matches(ToString(data))) {
          result.matches.push_back(id);
        }
        return Status::OK();
      }));

  if (options_.enable_query_cache) {
    if (query_cache_.size() >= options_.query_cache_entries &&
        query_cache_.find(canonical) == query_cache_.end()) {
      // Evict the least recently used entry.
      auto victim = query_cache_.begin();
      for (auto it = query_cache_.begin(); it != query_cache_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      query_cache_.erase(victim);
    }
    CachedQuery entry;
    entry.epoch = mutation_epoch_;
    entry.matches = result.matches;
    entry.last_used = ++cache_clock_;
    query_cache_[canonical] = std::move(entry);
  }
  return result;
}

Result<std::vector<ObjectId>> Storm::IndexSearch(
    std::string_view query) const {
  if (!options_.build_index) {
    return Status::FailedPrecondition("keyword index disabled");
  }
  BP_ASSIGN_OR_RETURN(QueryExpr expr, QueryExpr::Parse(query));
  expr.Normalize();  // Dedup terms so no posting list intersects twice.
  std::set<ObjectId> results;
  for (const auto& branch : expr.dnf()) {
    // Intersect the postings of every AND term.
    std::vector<ObjectId> acc = index_.Search(branch.front());
    for (size_t t = 1; t < branch.size() && !acc.empty(); ++t) {
      std::vector<ObjectId> postings = index_.Search(branch[t]);
      std::vector<ObjectId> merged;
      std::set_intersection(acc.begin(), acc.end(), postings.begin(),
                            postings.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
    results.insert(acc.begin(), acc.end());
  }
  return std::vector<ObjectId>(results.begin(), results.end());
}

Status Storm::Flush() { return pool_->FlushAll(); }

Status Storm::Checkpoint() {
  BP_RETURN_IF_ERROR(Flush());
  if (wal_ != nullptr) BP_RETURN_IF_ERROR(wal_->Checkpoint());
  return Status::OK();
}

}  // namespace bestpeer::storm
