#include "storm/wal.h"

#include <cerrno>
#include <cstring>

#include "util/hash.h"

namespace bestpeer::storm {

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(f, path));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::AppendRecord(RecordType type, const Bytes& payload) {
  // Body = [type][payload]; frame = [u32 body_len][body][u64 checksum].
  Bytes body;
  body.reserve(payload.size() + 1);
  body.push_back(static_cast<uint8_t>(type));
  body.insert(body.end(), payload.begin(), payload.end());
  uint64_t checksum = Fnv1a64(body.data(), body.size());
  uint32_t len = static_cast<uint32_t>(body.size());

  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("WAL seek failed");
  }
  if (std::fwrite(&len, sizeof(len), 1, file_) != 1 ||
      std::fwrite(body.data(), 1, body.size(), file_) != body.size() ||
      std::fwrite(&checksum, sizeof(checksum), 1, file_) != 1) {
    return Status::IoError("WAL append failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("WAL flush failed");
  }
  ++records_appended_;
  return Status::OK();
}

Status WriteAheadLog::AppendPut(ObjectId id, const Bytes& content) {
  BinaryWriter w;
  w.WriteU64(id);
  w.WriteBytes(content);
  return AppendRecord(RecordType::kPut, w.Take());
}

Status WriteAheadLog::AppendDelete(ObjectId id) {
  BinaryWriter w;
  w.WriteU64(id);
  return AppendRecord(RecordType::kDelete, w.Take());
}

Result<size_t> WriteAheadLog::Replay(const ReplayVisitor& visitor) {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IoError("WAL seek failed");
  }
  size_t visited = 0;
  for (;;) {
    uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, file_) != 1) break;  // Clean end.
    if (len == 0 || len > (64u << 20)) break;  // Torn/garbage length.
    Bytes body(len);
    if (std::fread(body.data(), 1, len, file_) != len) break;  // Torn body.
    uint64_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, file_) != 1) break;
    if (stored != Fnv1a64(body.data(), body.size())) break;  // Torn tail.

    Record record;
    uint8_t type = body[0];
    if (type < 1 || type > 3) break;
    record.type = static_cast<RecordType>(type);
    BinaryReader r(body.data() + 1, body.size() - 1);
    switch (record.type) {
      case RecordType::kPut: {
        BP_ASSIGN_OR_RETURN(record.object_id, r.ReadU64());
        BP_ASSIGN_OR_RETURN(record.content, r.ReadBytes());
        break;
      }
      case RecordType::kDelete: {
        BP_ASSIGN_OR_RETURN(record.object_id, r.ReadU64());
        break;
      }
      case RecordType::kCheckpoint:
        break;
    }
    BP_RETURN_IF_ERROR(visitor(record));
    ++visited;
  }
  // Leave the write position at the end for subsequent appends.
  std::fseek(file_, 0, SEEK_END);
  return visited;
}

Status WriteAheadLog::Checkpoint() {
  // Truncate by reopening in write mode.
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IoError("WAL truncate failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<size_t> WriteAheadLog::SizeBytes() const {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("WAL seek failed");
  }
  long size = std::ftell(file_);
  if (size < 0) return Status::IoError("WAL tell failed");
  return static_cast<size_t>(size);
}

}  // namespace bestpeer::storm
