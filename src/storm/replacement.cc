#include "storm/replacement.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace bestpeer::storm {

// ---------------------------------------------------------------- LRU

void LruPolicy::OnEvictable(FrameId frame) {
  auto it = where_.find(frame);
  if (it != where_.end()) order_.erase(it->second);
  order_.push_back(frame);
  where_[frame] = std::prev(order_.end());
}

void LruPolicy::OnPinned(FrameId frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

std::optional<FrameId> LruPolicy::ChooseVictim() {
  if (order_.empty()) return std::nullopt;
  FrameId victim = order_.front();
  order_.pop_front();
  where_.erase(victim);
  return victim;
}

// ---------------------------------------------------------------- FIFO

void FifoPolicy::OnEvictable(FrameId frame) {
  if (where_.count(frame) != 0) return;  // Keep original queue position.
  order_.push_back(frame);
  where_[frame] = std::prev(order_.end());
}

void FifoPolicy::OnPinned(FrameId frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

std::optional<FrameId> FifoPolicy::ChooseVictim() {
  if (order_.empty()) return std::nullopt;
  FrameId victim = order_.front();
  order_.pop_front();
  where_.erase(victim);
  return victim;
}

// ---------------------------------------------------------------- Clock

void ClockPolicy::OnEvictable(FrameId frame) {
  auto it = where_.find(frame);
  if (it != where_.end()) {
    it->second->referenced = true;
    return;
  }
  // Insert just before the hand so the new entry is visited last.
  auto pos = hand_ == ring_.end() ? ring_.end() : hand_;
  auto inserted = ring_.insert(pos, Entry{frame, true});
  where_[frame] = inserted;
  if (hand_ == ring_.end()) hand_ = inserted;
}

void ClockPolicy::OnPinned(FrameId frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) return;
  if (hand_ == it->second) {
    ++hand_;
    if (hand_ == ring_.end()) hand_ = ring_.begin();
  }
  ring_.erase(it->second);
  where_.erase(it);
  if (ring_.empty()) hand_ = ring_.end();
}

std::optional<FrameId> ClockPolicy::ChooseVictim() {
  if (ring_.empty()) return std::nullopt;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  for (;;) {
    if (hand_->referenced) {
      hand_->referenced = false;
      ++hand_;
      if (hand_ == ring_.end()) hand_ = ring_.begin();
    } else {
      FrameId victim = hand_->frame;
      auto dead = hand_;
      ++hand_;
      if (hand_ == ring_.end() && ring_.size() > 1) hand_ = ring_.begin();
      ring_.erase(dead);
      where_.erase(victim);
      if (ring_.empty()) hand_ = ring_.end();
      return victim;
    }
  }
}

// ---------------------------------------------------------------- LFU

void LfuPolicy::OnEvictable(FrameId frame) {
  Info& info = info_[frame];
  if (info.evictable) return;
  info.evictable = true;
  info.uses += 1;
  info.last_tick = ++tick_;
  ++evictable_;
}

void LfuPolicy::OnPinned(FrameId frame) {
  auto it = info_.find(frame);
  if (it == info_.end() || !it->second.evictable) return;
  it->second.evictable = false;
  --evictable_;
}

std::optional<FrameId> LfuPolicy::ChooseVictim() {
  if (evictable_ == 0) return std::nullopt;
  const Info* best = nullptr;
  FrameId best_frame = 0;
  for (const auto& [frame, info] : info_) {
    if (!info.evictable) continue;
    if (best == nullptr || info.uses < best->uses ||
        (info.uses == best->uses && info.last_tick < best->last_tick)) {
      best = &info;
      best_frame = frame;
    }
  }
  assert(best != nullptr);
  info_.erase(best_frame);
  --evictable_;
  return best_frame;
}

Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    std::string_view name) {
  if (name == "lru") return std::unique_ptr<ReplacementPolicy>(new LruPolicy);
  if (name == "fifo") {
    return std::unique_ptr<ReplacementPolicy>(new FifoPolicy);
  }
  if (name == "clock") {
    return std::unique_ptr<ReplacementPolicy>(new ClockPolicy);
  }
  if (name == "lfu") return std::unique_ptr<ReplacementPolicy>(new LfuPolicy);
  return Status::InvalidArgument("unknown replacement policy: " +
                                 std::string(name));
}

}  // namespace bestpeer::storm
