#ifndef BESTPEER_STORM_PAGER_H_
#define BESTPEER_STORM_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storm/page.h"
#include "util/result.h"
#include "util/status.h"

namespace bestpeer::storm {

/// Identifier of a page within a pager.
using PageId = uint32_t;

/// Backing store for pages. Two implementations: MemPager (volatile, used
/// in simulations) and FilePager (persistent, page-aligned file I/O).
class Pager {
 public:
  virtual ~Pager() = default;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `*out`; verifies the checksum of formatted pages.
  virtual Status Read(PageId id, Page* out) = 0;

  /// Writes `page` (checksum is refreshed first) to page `id`.
  virtual Status Write(PageId id, Page& page) = 0;

  /// Number of allocated pages.
  virtual PageId page_count() const = 0;

  /// Flushes to durable storage where applicable.
  virtual Status Sync() = 0;

  /// I/O counters (for tests and micro-benchmarks).
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 protected:
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// In-memory pager.
class MemPager : public Pager {
 public:
  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, Page& page) override;
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

/// File-backed pager; pages live at offset id * kPageSize.
class FilePager : public Pager {
 public:
  /// Opens (or creates) the file at `path`.
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path);

  ~FilePager() override;
  FilePager(const FilePager&) = delete;
  FilePager& operator=(const FilePager&) = delete;

  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, Page& page) override;
  PageId page_count() const override { return page_count_; }
  Status Sync() override;

 private:
  FilePager(std::FILE* file, PageId page_count, std::string path)
      : file_(file), page_count_(page_count), path_(std::move(path)) {}

  std::FILE* file_;
  PageId page_count_;
  std::string path_;
};

}  // namespace bestpeer::storm

#endif  // BESTPEER_STORM_PAGER_H_
