#include "storm/object_store.h"

#include <algorithm>
#include <cstring>

namespace bestpeer::storm {

namespace {

struct RecordHeader {
  ObjectId id;
  uint16_t chunk;
  uint16_t nchunks;
};

RecordHeader ParseHeader(const uint8_t* data) {
  RecordHeader h;
  std::memcpy(&h.id, data, 8);
  std::memcpy(&h.chunk, data + 8, 2);
  std::memcpy(&h.nchunks, data + 10, 2);
  return h;
}

Bytes MakeRecord(ObjectId id, uint16_t chunk, uint16_t nchunks,
                 const uint8_t* data, size_t len) {
  Bytes rec(ObjectStore::kRecordHeaderSize + len);
  std::memcpy(rec.data(), &id, 8);
  std::memcpy(rec.data() + 8, &chunk, 2);
  std::memcpy(rec.data() + 10, &nchunks, 2);
  std::memcpy(rec.data() + ObjectStore::kRecordHeaderSize, data, len);
  return rec;
}

}  // namespace

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(BufferPool* pool) {
  auto store = std::unique_ptr<ObjectStore>(new ObjectStore(pool));
  BP_RETURN_IF_ERROR(store->ScanExisting());
  return store;
}

Status ObjectStore::ScanExisting() {
  const PageId count = pool_->pager()->page_count();
  for (PageId pid = 0; pid < count; ++pid) {
    BP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pid));
    Page* page = guard.page();
    if (!page->IsFormatted()) continue;
    for (uint16_t slot = 0; slot < page->slot_count(); ++slot) {
      if (!page->SlotLive(slot)) continue;
      auto rec = page->Read(slot);
      if (!rec.ok()) return rec.status();
      if (rec->second < kRecordHeaderSize) {
        return Status::Corruption("undersized record on page " +
                                  std::to_string(pid));
      }
      RecordHeader h = ParseHeader(rec->first);
      auto& locs = directory_[h.id];
      if (locs.size() < static_cast<size_t>(h.nchunks)) {
        locs.resize(h.nchunks, Loc{0, Page::kTombstone});
      }
      if (h.chunk >= locs.size()) {
        return Status::Corruption("chunk index out of range for object " +
                                  std::to_string(h.id));
      }
      locs[h.chunk] = Loc{pid, slot};
    }
    free_space_[pid] = page->FreeSpace() + page->FragmentedSpace();
  }
  // Validate that every object has all chunks present.
  for (const auto& [id, locs] : directory_) {
    for (const Loc& loc : locs) {
      if (loc.slot == Page::kTombstone) {
        return Status::Corruption("missing chunk for object " +
                                  std::to_string(id));
      }
    }
  }
  return Status::OK();
}

Result<ObjectStore::Loc> ObjectStore::InsertRecord(const Bytes& record) {
  // First fit over pages believed to have room.
  for (auto& [pid, avail] : free_space_) {
    if (avail < record.size() + Page::kSlotEntrySize) continue;
    BP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(pid));
    Page* page = guard.page();
    if (page->FreeSpace() < record.size() &&
        page->FreeSpace() + page->FragmentedSpace() >= record.size()) {
      page->Compact();
      guard.MarkDirty();
    }
    auto slot = page->Insert(record.data(),
                             static_cast<uint16_t>(record.size()));
    if (slot.ok()) {
      guard.MarkDirty();
      avail = page->FreeSpace();
      return Loc{pid, slot.value()};
    }
    // Stale estimate; refresh and keep looking.
    avail = page->FreeSpace();
  }
  // No page fits: allocate a new one.
  BP_ASSIGN_OR_RETURN(PageGuard guard, pool_->New());
  Page* page = guard.page();
  BP_ASSIGN_OR_RETURN(
      uint16_t slot,
      page->Insert(record.data(), static_cast<uint16_t>(record.size())));
  guard.MarkDirty();
  free_space_[guard.id()] = page->FreeSpace();
  return Loc{guard.id(), slot};
}

Status ObjectStore::Put(ObjectId id, const Bytes& data) {
  if (directory_.count(id) != 0) {
    return Status::AlreadyExists("object " + std::to_string(id));
  }
  const size_t nchunks =
      data.empty() ? 1 : (data.size() + kChunkDataSize - 1) / kChunkDataSize;
  if (nchunks > 0xFFFF) {
    return Status::InvalidArgument("object too large");
  }
  std::vector<Loc> locs;
  locs.reserve(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    size_t off = c * kChunkDataSize;
    size_t len = std::min(kChunkDataSize, data.size() - off);
    Bytes record =
        MakeRecord(id, static_cast<uint16_t>(c),
                   static_cast<uint16_t>(nchunks),
                   data.empty() ? nullptr : data.data() + off, len);
    auto loc = InsertRecord(record);
    if (!loc.ok()) {
      // Roll back chunks already written.
      for (const Loc& done : locs) {
        auto guard = pool_->Fetch(done.page);
        if (guard.ok()) {
          guard->page()->Delete(done.slot).ok();
          guard->MarkDirty();
        }
      }
      return loc.status();
    }
    locs.push_back(loc.value());
  }
  directory_[id] = std::move(locs);
  return Status::OK();
}

Result<Bytes> ObjectStore::Get(ObjectId id) {
  auto it = directory_.find(id);
  if (it == directory_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  Bytes out;
  for (const Loc& loc : it->second) {
    BP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(loc.page));
    auto rec = guard.page()->Read(loc.slot);
    if (!rec.ok()) return rec.status();
    out.insert(out.end(), rec->first + kRecordHeaderSize,
               rec->first + rec->second);
  }
  return out;
}

Status ObjectStore::Delete(ObjectId id) {
  auto it = directory_.find(id);
  if (it == directory_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  for (const Loc& loc : it->second) {
    BP_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(loc.page));
    BP_RETURN_IF_ERROR(guard.page()->Delete(loc.slot));
    guard.MarkDirty();
    free_space_[loc.page] =
        guard.page()->FreeSpace() + guard.page()->FragmentedSpace();
  }
  directory_.erase(it);
  return Status::OK();
}

bool ObjectStore::Contains(ObjectId id) const {
  return directory_.count(id) != 0;
}

std::vector<ObjectId> ObjectStore::ListIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(directory_.size());
  for (const auto& [id, locs] : directory_) ids.push_back(id);
  return ids;
}

Status ObjectStore::ForEach(
    const std::function<Status(ObjectId, const Bytes&)>& fn) {
  for (const auto& [id, locs] : directory_) {
    BP_ASSIGN_OR_RETURN(Bytes data, Get(id));
    BP_RETURN_IF_ERROR(fn(id, data));
  }
  return Status::OK();
}

}  // namespace bestpeer::storm
