#include "storm/query_expr.h"

#include <algorithm>

#include "util/strings.h"

namespace bestpeer::storm {

Result<QueryExpr> QueryExpr::Parse(std::string_view text) {
  QueryExpr expr;
  std::vector<std::string> current;
  for (const std::string& raw : Split(text, ' ')) {
    if (raw.empty()) continue;
    if (raw == "OR") {
      if (current.empty()) {
        return Status::InvalidArgument("empty OR branch in query: " +
                                       std::string(text));
      }
      expr.dnf_.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(ToLower(raw));
  }
  if (current.empty()) {
    return Status::InvalidArgument(
        expr.dnf_.empty() ? "empty query"
                          : "empty OR branch in query: " + std::string(text));
  }
  expr.dnf_.push_back(std::move(current));
  return expr;
}

void QueryExpr::Normalize() {
  for (auto& branch : dnf_) {
    std::sort(branch.begin(), branch.end());
    branch.erase(std::unique(branch.begin(), branch.end()), branch.end());
  }
  std::sort(dnf_.begin(), dnf_.end());
  dnf_.erase(std::unique(dnf_.begin(), dnf_.end()), dnf_.end());
}

Result<std::string> QueryExpr::NormalizeQuery(std::string_view text) {
  BP_ASSIGN_OR_RETURN(QueryExpr expr, Parse(text));
  expr.Normalize();
  return expr.ToString();
}

bool QueryExpr::Matches(std::string_view content) const {
  for (const auto& branch : dnf_) {
    bool all = true;
    for (const auto& term : branch) {
      if (!ContainsKeyword(content, term)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

size_t QueryExpr::term_count() const {
  size_t n = 0;
  for (const auto& branch : dnf_) n += branch.size();
  return n;
}

std::string QueryExpr::ToString() const {
  std::string out;
  for (size_t b = 0; b < dnf_.size(); ++b) {
    if (b > 0) out += " OR ";
    out += Join(dnf_[b], " ");
  }
  return out;
}

}  // namespace bestpeer::storm
