#include "storm/keyword_index.h"

#include "util/strings.h"

namespace bestpeer::storm {

void KeywordIndex::Add(ObjectId id, std::string_view text) {
  for (const auto& tok : TokenizeKeywords(text)) {
    postings_[tok].insert(id);
  }
}

void KeywordIndex::Remove(ObjectId id, std::string_view text) {
  for (const auto& tok : TokenizeKeywords(text)) {
    auto it = postings_.find(tok);
    if (it == postings_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) postings_.erase(it);
  }
}

std::vector<ObjectId> KeywordIndex::Search(std::string_view keyword) const {
  std::vector<ObjectId> out;
  auto it = postings_.find(ToLower(keyword));
  if (it == postings_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

size_t KeywordIndex::PostingCount(std::string_view keyword) const {
  auto it = postings_.find(ToLower(keyword));
  return it == postings_.end() ? 0 : it->second.size();
}

}  // namespace bestpeer::storm
