#include "storm/keyword_index.h"

#include <algorithm>

#include "util/strings.h"

namespace bestpeer::storm {

void KeywordIndex::Add(ObjectId id, std::string_view text) {
  Remove(id);  // Update semantics: replace any previous postings of id.
  std::vector<std::string> tokens = TokenizeKeywords(text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (const std::string& token : tokens) {
    std::vector<ObjectId>& list = postings_[token];
    auto pos = std::lower_bound(list.begin(), list.end(), id);
    if (pos == list.end() || *pos != id) list.insert(pos, id);
  }
  if (!tokens.empty()) doc_tokens_[id] = std::move(tokens);
}

void KeywordIndex::Remove(ObjectId id) {
  auto doc = doc_tokens_.find(id);
  if (doc == doc_tokens_.end()) return;
  for (const std::string& token : doc->second) {
    auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    std::vector<ObjectId>& list = it->second;
    auto pos = std::lower_bound(list.begin(), list.end(), id);
    if (pos != list.end() && *pos == id) list.erase(pos);
    if (list.empty()) postings_.erase(it);
  }
  doc_tokens_.erase(doc);
}

std::vector<ObjectId> KeywordIndex::Search(std::string_view keyword) const {
  const std::vector<ObjectId>* list = Postings(keyword);
  if (list == nullptr) return {};
  return *list;
}

const std::vector<ObjectId>* KeywordIndex::Postings(
    std::string_view keyword) const {
  auto it = postings_.find(ToLower(keyword));
  if (it == postings_.end()) return nullptr;
  return &it->second;
}

size_t KeywordIndex::PostingCount(std::string_view keyword) const {
  const std::vector<ObjectId>* list = Postings(keyword);
  return list == nullptr ? 0 : list->size();
}

void KeywordIndex::ForEachKeyword(
    const std::function<void(std::string_view, size_t)>& fn) const {
  for (const auto& [keyword, list] : postings_) fn(keyword, list.size());
}

void KeywordIndex::Intersect(const std::vector<ObjectId>& a,
                             const std::vector<ObjectId>& b,
                             std::vector<ObjectId>* out, size_t* probes) {
  out->clear();
  const std::vector<ObjectId>& small = a.size() <= b.size() ? a : b;
  const std::vector<ObjectId>& large = a.size() <= b.size() ? b : a;
  size_t lo = 0;
  for (ObjectId id : small) {
    // Gallop: double the step until the window brackets id, then
    // binary-search inside it. Touches O(log gap) postings per lookup
    // instead of walking the whole larger list.
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < id) {
      if (probes != nullptr) ++*probes;
      lo = hi;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, large.size());
    auto first = large.begin() + static_cast<ptrdiff_t>(lo);
    auto last = large.begin() + static_cast<ptrdiff_t>(hi);
    auto pos = std::lower_bound(first, last, id);
    if (probes != nullptr && first != last) {
      size_t width = static_cast<size_t>(last - first);
      size_t log2 = 0;
      while (width > 1) {
        width >>= 1;
        ++log2;
      }
      *probes += log2 + 1;
    }
    if (pos != large.end() && *pos == id) {
      out->push_back(id);
      lo = static_cast<size_t>(pos - large.begin()) + 1;
    } else {
      lo = static_cast<size_t>(pos - large.begin());
    }
    if (lo >= large.size()) break;
  }
}

}  // namespace bestpeer::storm
