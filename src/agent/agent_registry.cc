#include "agent/agent_registry.h"

#include <set>

namespace bestpeer::agent {

Status AgentRegistry::Register(std::string_view class_name,
                               size_t code_size_bytes, Factory factory) {
  if (classes_.find(class_name) != classes_.end()) {
    return Status::AlreadyExists("agent class " + std::string(class_name));
  }
  classes_.emplace(std::string(class_name),
                   Entry{code_size_bytes, std::move(factory)});
  return Status::OK();
}

Result<std::unique_ptr<Agent>> AgentRegistry::Create(
    std::string_view class_name) const {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Status::NotFound("agent class " + std::string(class_name));
  }
  return it->second.factory();
}

Result<size_t> AgentRegistry::CodeSize(std::string_view class_name) const {
  auto it = classes_.find(class_name);
  if (it == classes_.end()) {
    return Status::NotFound("agent class " + std::string(class_name));
  }
  return it->second.code_size;
}

bool AgentRegistry::Contains(std::string_view class_name) const {
  return classes_.find(class_name) != classes_.end();
}

bool CodeCache::Has(NodeId node, std::string_view class_name) const {
  auto it = loaded_.find(node);
  if (it == loaded_.end()) return false;
  return it->second.find(class_name) != it->second.end();
}

void CodeCache::Load(NodeId node, std::string_view class_name) {
  loaded_[node].insert(std::string(class_name));
}

void CodeCache::EvictNode(NodeId node) { loaded_.erase(node); }

size_t CodeCache::total_loaded() const {
  size_t n = 0;
  for (const auto& [node, classes] : loaded_) n += classes.size();
  return n;
}

}  // namespace bestpeer::agent
