#include "agent/agent_runtime.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "util/logging.h"

namespace bestpeer::agent {

AgentRuntime::AgentRuntime(net::Transport* transport,
                           const AgentRegistry* registry,
                           CodeCache* code_cache, AgentHost* host,
                           NeighborFn neighbors, AgentRuntimeOptions options)
    : transport_(transport),
      node_(transport->local()),
      registry_(registry),
      code_cache_(code_cache),
      host_(host),
      neighbors_(std::move(neighbors)),
      options_(std::move(options)) {
  // The launching node always has its own classes "loaded".
  transport_->RegisterTypeName(kAgentTransferType, "agent.migrate");
  if (options_.metrics != nullptr) {
    metrics::Registry* reg = options_.metrics;
    received_c_ = reg->GetCounter("agent.received");
    duplicates_c_ = reg->GetCounter("agent.duplicates_dropped");
    executed_c_ = reg->GetCounter("agent.executed");
    migrations_c_ = reg->GetCounter("agent.migrations");
    ttl_deaths_c_ = reg->GetCounter("agent.ttl_deaths");
    class_loads_c_ = reg->GetCounter("agent.class_loads");
    expired_c_ = reg->GetCounter("agent.expired");
    serialize_bytes_c_ = reg->GetCounter("agent.serialize_bytes");
    reconstruct_us_c_ = reg->GetCounter("agent.reconstruct_us");
    hops_at_execute_ = reg->GetHistogram("agent.hops_at_execute");
  }
}

Status AgentRuntime::SendAgentTo(NodeId dst, const AgentMessage& msg) {
  Bytes encoded = msg.Encode();
  serialize_bytes_c_->Add(encoded.size());
  BP_ASSIGN_OR_RETURN(Bytes compressed, options_.codec->Compress(encoded));
  size_t extra = 0;
  if (!code_cache_->Has(dst, msg.class_name)) {
    BP_ASSIGN_OR_RETURN(extra, registry_->CodeSize(msg.class_name));
  }
  transport_->Send(dst, kAgentTransferType, std::move(compressed), extra,
                   /*flow=*/msg.agent_id);
  if (obs::FlightRecorder* flight = transport_->flight()) {
    obs::FlightEvent e;
    e.ts = transport_->clock().now();
    e.type = obs::EventType::kAgentHop;
    e.node = node_;
    e.peer = dst;
    e.flow = msg.agent_id;
    e.a = msg.hops;
    e.b = extra;  // Shipped class bytes, 0 when the code was cached.
    flight->Record(e);
  }
  ++clones_sent_;
  migrations_c_->Increment();
  return Status::OK();
}

void AgentRuntime::Forward(const AgentMessage& msg, NodeId skip) {
  if (msg.ttl == 0) {
    // The agent dies here: its TTL ran out before the overlay was
    // exhausted (the coverage loss Fig. 8 quantifies).
    ttl_deaths_c_->Increment();
    return;
  }
  AgentMessage clone = msg;
  clone.ttl = static_cast<uint16_t>(msg.ttl - 1);
  clone.hops = static_cast<uint16_t>(msg.hops + 1);
  for (NodeId n : neighbors_()) {
    if (n == skip || n == node_ || n == msg.origin) continue;
    // Per-clone handling cost, then the clone hits the wire.
    transport_->RunCpu(
        options_.forward_cost,
        [this, n, clone]() {
          Status s = SendAgentTo(n, clone);
          if (!s.ok()) {
            BP_LOG(Warn) << "forward to " << n << " failed: " << s.ToString();
          }
        },
        "agent.forward", msg.agent_id);
  }
}

Status AgentRuntime::ExecuteIncoming(const AgentMessage& msg) {
  BP_ASSIGN_OR_RETURN(auto agent, registry_->Create(msg.class_name));
  BinaryReader reader(msg.state);
  BP_RETURN_IF_ERROR(agent->LoadState(reader));

  SimTime setup = options_.reconstruct_cost;
  if (!code_cache_->Has(node_, msg.class_name)) {
    setup += options_.class_load_cost;
    code_cache_->Load(node_, msg.class_name);
    class_loads_c_->Increment();
  }
  reconstruct_us_c_->Add(static_cast<uint64_t>(setup));

  AgentContext ctx(host_, node_, msg.origin, msg.hops, msg.ttl);
  BP_RETURN_IF_ERROR(agent->Execute(ctx));
  ++agents_executed_;
  executed_c_->Increment();
  hops_at_execute_->Observe(static_cast<double>(msg.hops));

  SimTime total = setup + ctx.cpu_cost();
  // The setup/scan split lets the critical-path analyzer separate agent
  // overhead (reconstruct + class load) from useful store-scan time.
  std::vector<std::pair<std::string, uint64_t>> span_args;
  if (transport_->trace() != nullptr) {
    span_args.emplace_back("setup", static_cast<uint64_t>(setup));
    span_args.emplace_back("scan", static_cast<uint64_t>(ctx.cpu_cost()));
  }
  auto sends = std::move(ctx.mutable_sends());
  auto codec = options_.codec;
  net::Transport* transport = transport_;
  FlowId flow = msg.agent_id;
  transport_->RunCpu(
      total,
      [transport, codec, flow, sends = std::move(sends)]() {
        for (const auto& send : sends) {
          auto compressed = codec->Compress(send.payload);
          if (!compressed.ok()) continue;
          transport->Send(send.dst, send.type,
                          std::move(compressed).value(), 0, flow);
        }
      },
      "agent.execute", flow, std::move(span_args));
  return Status::OK();
}

Status AgentRuntime::LaunchTo(uint64_t agent_id, Agent& agent, uint16_t ttl,
                              const std::vector<NodeId>& targets) {
  if (!registry_->Contains(agent.class_name())) {
    return Status::FailedPrecondition("agent class not registered: " +
                                      std::string(agent.class_name()));
  }
  if (ttl == 0) {
    return Status::InvalidArgument("targeted launch needs ttl >= 1");
  }
  code_cache_->Load(node_, agent.class_name());
  seen_[agent_id] = transport_->clock().now();

  AgentMessage msg;
  msg.agent_id = agent_id;
  msg.class_name = std::string(agent.class_name());
  msg.origin = node_;
  msg.ttl = static_cast<uint16_t>(ttl - 1);
  msg.hops = 1;
  BinaryWriter writer;
  agent.SaveState(writer);
  msg.state = writer.Take();

  for (NodeId target : targets) {
    if (target == node_) continue;
    BP_RETURN_IF_ERROR(SendAgentTo(target, msg));
  }
  return Status::OK();
}

Status AgentRuntime::Launch(uint64_t agent_id, Agent& agent, uint16_t ttl,
                            bool execute_locally,
                            const std::vector<NodeId>* skip) {
  if (!registry_->Contains(agent.class_name())) {
    return Status::FailedPrecondition("agent class not registered: " +
                                      std::string(agent.class_name()));
  }
  code_cache_->Load(node_, agent.class_name());
  seen_[agent_id] = transport_->clock().now();

  AgentMessage msg;
  msg.agent_id = agent_id;
  msg.class_name = std::string(agent.class_name());
  msg.origin = node_;
  msg.ttl = ttl;
  msg.hops = 0;
  BinaryWriter writer;
  agent.SaveState(writer);
  msg.state = writer.Take();

  if (ttl > 0) {
    AgentMessage clone = msg;
    clone.ttl = static_cast<uint16_t>(ttl - 1);
    clone.hops = 1;
    for (NodeId n : neighbors_()) {
      if (n == node_) continue;
      if (skip != nullptr &&
          std::find(skip->begin(), skip->end(), n) != skip->end()) {
        continue;
      }
      BP_RETURN_IF_ERROR(SendAgentTo(n, clone));
    }
  }

  if (execute_locally) {
    // Local execution: the class is local and no reconstruction happens.
    AgentContext ctx(host_, node_, node_, 0, ttl);
    BP_RETURN_IF_ERROR(agent.Execute(ctx));
    ++agents_executed_;
    executed_c_->Increment();
    hops_at_execute_->Observe(0);
    auto sends = std::move(ctx.mutable_sends());
    auto codec = options_.codec;
    net::Transport* transport = transport_;
    transport_->RunCpu(
        ctx.cpu_cost(),
        [transport, codec, agent_id, sends = std::move(sends)]() {
          for (const auto& send : sends) {
            auto compressed = codec->Compress(send.payload);
            if (!compressed.ok()) continue;
            transport->Send(send.dst, send.type,
                            std::move(compressed).value(), 0, agent_id);
          }
        },
        "agent.execute", agent_id);
  }
  return Status::OK();
}

void AgentRuntime::PruneSeen() {
  if (options_.seen_expiry <= 0) return;
  const SimTime cutoff = transport_->clock().now() - options_.seen_expiry;
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second < cutoff) {
      // A lost agent (dropped in flight, or died with a crashed host)
      // never comes back to deregister itself — age its record out so
      // the table stays bounded under churn and faults.
      it = seen_.erase(it);
      ++seen_expired_;
      expired_c_->Increment();
    } else {
      ++it;
    }
  }
}

Status AgentRuntime::OnMessage(const net::Message& msg) {
  if (msg.type != kAgentTransferType) {
    return Status::InvalidArgument("not an agent transfer");
  }
  BP_ASSIGN_OR_RETURN(Bytes decoded, options_.codec->Decompress(msg.payload));
  BP_ASSIGN_OR_RETURN(AgentMessage agent_msg, AgentMessage::Decode(decoded));
  ++agents_received_;
  received_c_->Increment();

  PruneSeen();
  auto [it, inserted] =
      seen_.emplace(agent_msg.agent_id, transport_->clock().now());
  if (!inserted) {
    it->second = transport_->clock().now();  // Refresh: still circulating.
    ++duplicates_dropped_;
    duplicates_c_->Increment();
    return Status::OK();
  }
  Forward(agent_msg, msg.src);
  return ExecuteIncoming(agent_msg);
}

}  // namespace bestpeer::agent
