#include "agent/agent_runtime.h"

#include <utility>

#include "util/logging.h"

namespace bestpeer::agent {

AgentRuntime::AgentRuntime(sim::SimNetwork* network, sim::NodeId node,
                           const AgentRegistry* registry,
                           CodeCache* code_cache, AgentHost* host,
                           NeighborFn neighbors, AgentRuntimeOptions options)
    : network_(network),
      node_(node),
      registry_(registry),
      code_cache_(code_cache),
      host_(host),
      neighbors_(std::move(neighbors)),
      options_(std::move(options)) {
  // The launching node always has its own classes "loaded".
}

Status AgentRuntime::SendAgentTo(sim::NodeId dst, const AgentMessage& msg) {
  Bytes encoded = msg.Encode();
  BP_ASSIGN_OR_RETURN(Bytes compressed, options_.codec->Compress(encoded));
  size_t extra = 0;
  if (!code_cache_->Has(dst, msg.class_name)) {
    BP_ASSIGN_OR_RETURN(extra, registry_->CodeSize(msg.class_name));
  }
  network_->Send(node_, dst, kAgentTransferType, std::move(compressed),
                 extra);
  ++clones_sent_;
  return Status::OK();
}

void AgentRuntime::Forward(const AgentMessage& msg, sim::NodeId skip) {
  if (msg.ttl == 0) return;
  AgentMessage clone = msg;
  clone.ttl = static_cast<uint16_t>(msg.ttl - 1);
  clone.hops = static_cast<uint16_t>(msg.hops + 1);
  for (sim::NodeId n : neighbors_()) {
    if (n == skip || n == node_ || n == msg.origin) continue;
    // Per-clone handling cost, then the clone hits the wire.
    network_->Cpu(node_).Submit(options_.forward_cost, [this, n, clone]() {
      Status s = SendAgentTo(n, clone);
      if (!s.ok()) {
        BP_LOG(Warn) << "forward to " << n << " failed: " << s.ToString();
      }
    });
  }
}

Status AgentRuntime::ExecuteIncoming(const AgentMessage& msg) {
  BP_ASSIGN_OR_RETURN(auto agent, registry_->Create(msg.class_name));
  BinaryReader reader(msg.state);
  BP_RETURN_IF_ERROR(agent->LoadState(reader));

  SimTime setup = options_.reconstruct_cost;
  if (!code_cache_->Has(node_, msg.class_name)) {
    setup += options_.class_load_cost;
    code_cache_->Load(node_, msg.class_name);
  }

  AgentContext ctx(host_, node_, msg.origin, msg.hops, msg.ttl);
  BP_RETURN_IF_ERROR(agent->Execute(ctx));
  ++agents_executed_;

  SimTime total = setup + ctx.cpu_cost();
  auto sends = std::move(ctx.mutable_sends());
  auto codec = options_.codec;
  sim::SimNetwork* network = network_;
  sim::NodeId self = node_;
  network_->Cpu(node_).Submit(total, [network, codec, self,
                                      sends = std::move(sends)]() {
    for (const auto& send : sends) {
      auto compressed = codec->Compress(send.payload);
      if (!compressed.ok()) continue;
      network->Send(self, send.dst, send.type,
                    std::move(compressed).value());
    }
  });
  return Status::OK();
}

Status AgentRuntime::LaunchTo(uint64_t agent_id, Agent& agent, uint16_t ttl,
                              const std::vector<sim::NodeId>& targets) {
  if (!registry_->Contains(agent.class_name())) {
    return Status::FailedPrecondition("agent class not registered: " +
                                      std::string(agent.class_name()));
  }
  if (ttl == 0) {
    return Status::InvalidArgument("targeted launch needs ttl >= 1");
  }
  code_cache_->Load(node_, agent.class_name());
  seen_.insert(agent_id);

  AgentMessage msg;
  msg.agent_id = agent_id;
  msg.class_name = std::string(agent.class_name());
  msg.origin = node_;
  msg.ttl = static_cast<uint16_t>(ttl - 1);
  msg.hops = 1;
  BinaryWriter writer;
  agent.SaveState(writer);
  msg.state = writer.Take();

  for (sim::NodeId target : targets) {
    if (target == node_) continue;
    BP_RETURN_IF_ERROR(SendAgentTo(target, msg));
  }
  return Status::OK();
}

Status AgentRuntime::Launch(uint64_t agent_id, Agent& agent, uint16_t ttl,
                            bool execute_locally) {
  if (!registry_->Contains(agent.class_name())) {
    return Status::FailedPrecondition("agent class not registered: " +
                                      std::string(agent.class_name()));
  }
  code_cache_->Load(node_, agent.class_name());
  seen_.insert(agent_id);

  AgentMessage msg;
  msg.agent_id = agent_id;
  msg.class_name = std::string(agent.class_name());
  msg.origin = node_;
  msg.ttl = ttl;
  msg.hops = 0;
  BinaryWriter writer;
  agent.SaveState(writer);
  msg.state = writer.Take();

  if (ttl > 0) {
    AgentMessage clone = msg;
    clone.ttl = static_cast<uint16_t>(ttl - 1);
    clone.hops = 1;
    for (sim::NodeId n : neighbors_()) {
      if (n == node_) continue;
      BP_RETURN_IF_ERROR(SendAgentTo(n, clone));
    }
  }

  if (execute_locally) {
    // Local execution: the class is local and no reconstruction happens.
    AgentContext ctx(host_, node_, node_, 0, ttl);
    BP_RETURN_IF_ERROR(agent.Execute(ctx));
    ++agents_executed_;
    auto sends = std::move(ctx.mutable_sends());
    auto codec = options_.codec;
    sim::SimNetwork* network = network_;
    sim::NodeId self = node_;
    network_->Cpu(node_).Submit(
        ctx.cpu_cost(), [network, codec, self, sends = std::move(sends)]() {
          for (const auto& send : sends) {
            auto compressed = codec->Compress(send.payload);
            if (!compressed.ok()) continue;
            network->Send(self, send.dst, send.type,
                          std::move(compressed).value());
          }
        });
  }
  return Status::OK();
}

Status AgentRuntime::OnMessage(const sim::SimMessage& msg) {
  if (msg.type != kAgentTransferType) {
    return Status::InvalidArgument("not an agent transfer");
  }
  BP_ASSIGN_OR_RETURN(Bytes decoded, options_.codec->Decompress(msg.payload));
  BP_ASSIGN_OR_RETURN(AgentMessage agent_msg, AgentMessage::Decode(decoded));
  ++agents_received_;

  if (!seen_.insert(agent_msg.agent_id).second) {
    ++duplicates_dropped_;
    return Status::OK();
  }
  Forward(agent_msg, msg.src);
  return ExecuteIncoming(agent_msg);
}

}  // namespace bestpeer::agent
