#include "agent/agent_message.h"

namespace bestpeer::agent {

Bytes AgentMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(agent_id);
  w.WriteString(class_name);
  w.WriteU32(origin);
  w.WriteU16(ttl);
  w.WriteU16(hops);
  w.WriteBytes(state);
  return w.Take();
}

Result<AgentMessage> AgentMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  AgentMessage m;
  BP_ASSIGN_OR_RETURN(m.agent_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.class_name, r.ReadString());
  BP_ASSIGN_OR_RETURN(m.origin, r.ReadU32());
  BP_ASSIGN_OR_RETURN(m.ttl, r.ReadU16());
  BP_ASSIGN_OR_RETURN(m.hops, r.ReadU16());
  BP_ASSIGN_OR_RETURN(m.state, r.ReadBytes());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in agent message");
  }
  return m;
}

}  // namespace bestpeer::agent
