#ifndef BESTPEER_AGENT_AGENT_RUNTIME_H_
#define BESTPEER_AGENT_AGENT_RUNTIME_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "agent/agent.h"
#include "agent/agent_message.h"
#include "agent/agent_registry.h"
#include "compress/codec.h"
#include "net/transport.h"
#include "util/sim_time.h"

namespace bestpeer::agent {

/// Message-type tag used for agent transfers on the simulated wire.
constexpr uint32_t kAgentTransferType = 0x41474E54;  // "AGNT"

/// Cost model and behaviour knobs of a node's agent engine.
struct AgentRuntimeOptions {
  /// CPU to rebuild an agent from its serialized state at a peer
  /// (the paper's "overhead of reconstructing the agent at the peer site").
  SimTime reconstruct_cost = Millis(4);
  /// Extra CPU the first time a class is loaded at a node.
  SimTime class_load_cost = Millis(8);
  /// CPU to clone-and-forward the agent to one neighbour.
  SimTime forward_cost = Micros(300);
  /// How long the duplicate-drop table remembers an agent id after its
  /// last sighting. Lost agents (dropped in flight, died with their host)
  /// never deregister, so without expiry the table grows forever under
  /// churn. 0 = never forget (the original behaviour).
  SimTime seen_expiry = 0;
  /// Transport codec applied to agent messages (the paper's GZIP layer).
  std::shared_ptr<const Codec> codec = std::make_shared<NullCodec>();
  /// Metrics sink (not owned; must outlive the runtime). nullptr routes
  /// increments to no-op handles.
  metrics::Registry* metrics = nullptr;
};

/// Per-node mobile-agent engine (the "environment in which (mobile) agents
/// can reside and perform their tasks", §2).
///
/// Receipt pipeline, following §3.1:
///  1. Duplicate drop: an agent id seen before is discarded.
///  2. If TTL > 0, the agent is cloned and forwarded to every current
///     overlay neighbour except the arrival link (TTL-1, Hops+1). The
///     agent's path is fully transparent to the agent developer.
///  3. The agent is reconstructed (CPU cost; plus class-load cost on the
///     first visit of this class) and executed on a fresh thread of the
///     node's CPU; its queued sends fire when the work completes.
class AgentRuntime {
 public:
  /// Returns the node's *current* direct overlay neighbours — evaluated at
  /// forward time, so self-reconfiguration is picked up immediately.
  using NeighborFn = std::function<std::vector<NodeId>()>;

  /// All pointers must outlive the runtime. `transport` is this node's
  /// endpoint; `host` provides the services agents touch; `code_cache` is
  /// shared network-wide.
  AgentRuntime(net::Transport* transport, const AgentRegistry* registry,
               CodeCache* code_cache, AgentHost* host, NeighborFn neighbors,
               AgentRuntimeOptions options);

  AgentRuntime(const AgentRuntime&) = delete;
  AgentRuntime& operator=(const AgentRuntime&) = delete;

  /// Launches an agent from this node to all current neighbours; the
  /// launching node also executes the agent locally (so local resources
  /// participate in the search). `agent_id` must be globally unique.
  /// Neighbours listed in `skip` (may be null) receive no clone — the
  /// content-summary layer uses this to prune peers whose summary
  /// provably excludes the query.
  Status Launch(uint64_t agent_id, Agent& agent, uint16_t ttl,
                bool execute_locally = true,
                const std::vector<NodeId>* skip = nullptr);

  /// Launches an agent to an explicit set of destinations only (used by
  /// the adaptive shipping layer to interrogate selected peers). The
  /// agent still clones onward from the targets if ttl > 1.
  Status LaunchTo(uint64_t agent_id, Agent& agent, uint16_t ttl,
                  const std::vector<NodeId>& targets);

  /// Feeds a raw transport message into the engine (core nodes call this
  /// from their deliver handler for kAgentTransferType messages).
  Status OnMessage(const net::Message& msg);

  /// Statistics.
  uint64_t agents_received() const { return agents_received_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t agents_executed() const { return agents_executed_; }
  uint64_t clones_sent() const { return clones_sent_; }
  /// Agent ids aged out of the duplicate-drop table (lost-agent expiry).
  uint64_t seen_expired() const { return seen_expired_; }
  /// Current size of the duplicate-drop table.
  size_t seen_size() const { return seen_.size(); }

  NodeId node() const { return node_; }

 private:
  /// Clones `msg` to all neighbours except `skip` (TTL-1, Hops+1).
  void Forward(const AgentMessage& msg, NodeId skip);

  /// Reconstructs and executes the agent carried by `msg`.
  Status ExecuteIncoming(const AgentMessage& msg);

  /// Sends one agent message to `dst`, shipping class bytes if needed.
  Status SendAgentTo(NodeId dst, const AgentMessage& msg);

  /// Drops duplicate-table entries unseen for options_.seen_expiry.
  void PruneSeen();

  net::Transport* transport_;
  NodeId node_;
  const AgentRegistry* registry_;
  CodeCache* code_cache_;
  AgentHost* host_;
  NeighborFn neighbors_;
  AgentRuntimeOptions options_;

  /// agent id -> when it was last sighted (for expiry).
  std::map<uint64_t, SimTime> seen_;
  uint64_t agents_received_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t agents_executed_ = 0;
  uint64_t clones_sent_ = 0;
  uint64_t seen_expired_ = 0;

  metrics::Counter* received_c_ = metrics::Counter::Noop();
  metrics::Counter* duplicates_c_ = metrics::Counter::Noop();
  metrics::Counter* executed_c_ = metrics::Counter::Noop();
  metrics::Counter* migrations_c_ = metrics::Counter::Noop();
  metrics::Counter* ttl_deaths_c_ = metrics::Counter::Noop();
  metrics::Counter* class_loads_c_ = metrics::Counter::Noop();
  metrics::Counter* expired_c_ = metrics::Counter::Noop();
  metrics::Counter* serialize_bytes_c_ = metrics::Counter::Noop();
  metrics::Counter* reconstruct_us_c_ = metrics::Counter::Noop();
  metrics::Histogram* hops_at_execute_ = metrics::Histogram::Noop();
};

}  // namespace bestpeer::agent

#endif  // BESTPEER_AGENT_AGENT_RUNTIME_H_
