#ifndef BESTPEER_AGENT_AGENT_H_
#define BESTPEER_AGENT_AGENT_H_

#include <memory>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "storm/storm.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace bestpeer::cache {
class ResultCache;
}  // namespace bestpeer::cache

namespace bestpeer::agent {

/// The environment an agent can touch while executing at a node. The core
/// library's node type implements this; concrete agents that need more
/// than storage may downcast to the host type they were designed for.
class AgentHost {
 public:
  virtual ~AgentHost() = default;

  /// The node's storage manager; may be null on storage-less nodes.
  virtual storm::Storm* storage() = 0;

  /// The physical id of the hosting node.
  virtual NodeId host_node() const = 0;

  /// The node's query-result cache; null (the default) when result
  /// caching is disabled at this host.
  virtual cache::ResultCache* result_cache() { return nullptr; }

  /// Invoked after a search served `matches` for the normalized query
  /// `key` at this host (from cache or a fresh scan). Hosts may use it to
  /// promote hot answers into neighbor replicas. Default: no-op.
  virtual void OnAnswerServed(std::string_view key,
                              const std::vector<uint64_t>& matches) {
    (void)key;
    (void)matches;
  }
};

/// Collects the externally visible effects of one agent execution.
/// The runtime charges the CPU cost first and only then performs the
/// sends, so results leave the node when the simulated work is done.
class AgentContext {
 public:
  struct Send {
    NodeId dst;
    uint32_t type;
    Bytes payload;
  };

  AgentContext(AgentHost* host, NodeId current, NodeId origin,
               uint16_t hops, uint16_t ttl)
      : host_(host),
        current_(current),
        origin_(origin),
        hops_(hops),
        ttl_(ttl) {}

  /// The hosting environment.
  AgentHost* host() { return host_; }

  /// Node the agent is executing on.
  NodeId current_node() const { return current_; }

  /// Node that launched the agent (the paper's "base node").
  NodeId origin_node() const { return origin_; }

  /// Overlay hops travelled from the base node to here.
  uint16_t hops() const { return hops_; }

  /// Remaining time-to-live.
  uint16_t ttl() const { return ttl_; }

  /// Adds simulated CPU time consumed by the execution.
  void ChargeCpu(SimTime cost) { cpu_cost_ += cost; }

  /// Queues a message to be sent when the execution's CPU cost elapses.
  void SendMessage(NodeId dst, uint32_t type, Bytes payload) {
    sends_.push_back(Send{dst, type, std::move(payload)});
  }

  SimTime cpu_cost() const { return cpu_cost_; }
  const std::vector<Send>& sends() const { return sends_; }
  std::vector<Send>& mutable_sends() { return sends_; }

 private:
  AgentHost* host_;
  NodeId current_;
  NodeId origin_;
  uint16_t hops_;
  uint16_t ttl_;
  SimTime cpu_cost_ = 0;
  std::vector<Send> sends_;
};

/// A mobile agent: serializable state plus behaviour executed at each node
/// it visits. In the paper agents are Java objects whose class and state
/// ship between peers; here state genuinely serializes through
/// SaveState/LoadState and "code" is a factory registered by class name
/// (see AgentRegistry) whose byte size is charged to the wire.
class Agent {
 public:
  virtual ~Agent() = default;

  /// The registered class name; identifies the factory and code size.
  virtual std::string_view class_name() const = 0;

  /// Serializes mutable state for shipment.
  virtual void SaveState(BinaryWriter& writer) const = 0;

  /// Restores state at the destination engine.
  virtual Status LoadState(BinaryReader& reader) = 0;

  /// Runs at the current node. Report CPU via ctx.ChargeCpu and outputs
  /// via ctx.SendMessage; both are applied by the runtime.
  virtual Status Execute(AgentContext& ctx) = 0;
};

}  // namespace bestpeer::agent

#endif  // BESTPEER_AGENT_AGENT_H_
