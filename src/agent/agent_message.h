#ifndef BESTPEER_AGENT_AGENT_MESSAGE_H_
#define BESTPEER_AGENT_AGENT_MESSAGE_H_

#include <cstdint>
#include <string>

#include "util/ids.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::agent {

/// Wire form of a travelling agent. TTL and Hops are carried redundantly,
/// as in the paper ("the redundant use of TTL and Hops together is to
/// enable hosts to drop any incoming agent that already has a copy").
struct AgentMessage {
  /// Shared by all clones of one launch; used for duplicate dropping.
  uint64_t agent_id = 0;
  /// Registered class name (the "code" identity).
  std::string class_name;
  /// The base node that launched the agent.
  NodeId origin = kInvalidNode;
  /// Remaining time-to-live; an agent arriving with ttl 0 still executes
  /// but is not forwarded further.
  uint16_t ttl = 0;
  /// Overlay hops travelled so far.
  uint16_t hops = 0;
  /// Serialized agent state (Agent::SaveState output).
  Bytes state;

  /// Encodes to bytes (before transport compression).
  Bytes Encode() const;

  /// Decodes a buffer produced by Encode.
  static Result<AgentMessage> Decode(const Bytes& data);
};

}  // namespace bestpeer::agent

#endif  // BESTPEER_AGENT_AGENT_MESSAGE_H_
