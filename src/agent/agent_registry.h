#ifndef BESTPEER_AGENT_AGENT_REGISTRY_H_
#define BESTPEER_AGENT_AGENT_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "agent/agent.h"
#include "util/result.h"

namespace bestpeer::agent {

/// Maps agent class names to factories — the safe C++ stand-in for Java
/// class loading. The registered code_size_bytes is what the simulation
/// ships over the wire the first time a class reaches a node.
class AgentRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Agent>()>;

  /// Registers a class. Fails with AlreadyExists on duplicate names.
  Status Register(std::string_view class_name, size_t code_size_bytes,
                  Factory factory);

  /// Instantiates a fresh (state-less) agent of the named class.
  Result<std::unique_ptr<Agent>> Create(std::string_view class_name) const;

  /// Code size shipped when the class first travels to a node.
  Result<size_t> CodeSize(std::string_view class_name) const;

  /// True iff the class is registered.
  bool Contains(std::string_view class_name) const;

  size_t class_count() const { return classes_.size(); }

 private:
  struct Entry {
    size_t code_size;
    Factory factory;
  };
  std::map<std::string, Entry, std::less<>> classes_;
};

/// Tracks which simulated nodes have which agent classes loaded. Shared by
/// all runtimes on one network so the sender can know whether to ship the
/// class bytes along with the agent (mirroring Java's on-demand class
/// transfer without a second round trip in the model).
class CodeCache {
 public:
  /// True iff `node` already has `class_name`.
  bool Has(NodeId node, std::string_view class_name) const;

  /// Marks the class as present at the node.
  void Load(NodeId node, std::string_view class_name);

  /// Drops everything cached at a node (e.g., node restart).
  void EvictNode(NodeId node);

  /// Total (node, class) residencies.
  size_t total_loaded() const;

 private:
  std::map<NodeId, std::set<std::string, std::less<>>> loaded_;
};

}  // namespace bestpeer::agent

#endif  // BESTPEER_AGENT_AGENT_REGISTRY_H_
