#include "baseline/cs_node.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace bestpeer::baseline {

namespace {

// ---- wire formats ----------------------------------------------------

struct QueryMessage {
  uint64_t query_id = 0;
  std::string keyword;

  Bytes Encode() const {
    BinaryWriter w;
    w.WriteU64(query_id);
    w.WriteString(keyword);
    return w.Take();
  }
  static Result<QueryMessage> Decode(const Bytes& data) {
    BinaryReader r(data);
    QueryMessage m;
    BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
    BP_ASSIGN_OR_RETURN(m.keyword, r.ReadString());
    return m;
  }
};

struct AnswerMessage {
  uint64_t query_id = 0;
  NodeId origin = kInvalidNode;
  std::vector<core::ResultItem> items;

  Bytes Encode() const {
    BinaryWriter w;
    w.WriteU64(query_id);
    w.WriteU32(origin);
    w.WriteVarint(items.size());
    for (const auto& item : items) {
      w.WriteU64(item.id);
      w.WriteString(item.name);
      w.WriteBytes(item.content);
    }
    return w.Take();
  }
  static Result<AnswerMessage> Decode(const Bytes& data) {
    BinaryReader r(data);
    AnswerMessage m;
    BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
    BP_ASSIGN_OR_RETURN(m.origin, r.ReadU32());
    BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
    m.items.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      core::ResultItem item;
      BP_ASSIGN_OR_RETURN(item.id, r.ReadU64());
      BP_ASSIGN_OR_RETURN(item.name, r.ReadString());
      BP_ASSIGN_OR_RETURN(item.content, r.ReadBytes());
      m.items.push_back(std::move(item));
    }
    return m;
  }
};

struct DoneMessage {
  uint64_t query_id = 0;

  Bytes Encode() const {
    BinaryWriter w;
    w.WriteU64(query_id);
    return w.Take();
  }
  static Result<DoneMessage> Decode(const Bytes& data) {
    BinaryReader r(data);
    DoneMessage m;
    BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
    return m;
  }
};

}  // namespace

size_t CsSession::total_answers() const {
  size_t n = 0;
  for (const auto& e : answers_) n += e.answers;
  return n;
}

size_t CsSession::responder_count() const {
  std::set<NodeId> seen;
  for (const auto& e : answers_) seen.insert(e.node);
  return seen.size();
}

SimTime CsSession::last_answer_time() const {
  SimTime last = start_;
  for (const auto& e : answers_) last = std::max(last, e.time);
  return last - start_;
}

SimTime CsSession::completion_time() const {
  return std::max(complete_time_ - start_, last_answer_time());
}

CsNode::CsNode(net::Transport* transport, CsConfig config)
    : transport_(transport),
      node_(transport->local()),
      config_(std::move(config)) {}

Result<std::unique_ptr<CsNode>> CsNode::Create(net::Transport* transport,
                                               CsConfig config) {
  auto owned =
      std::unique_ptr<CsNode>(new CsNode(transport, std::move(config)));
  BP_RETURN_IF_ERROR(owned->Init());
  return owned;
}

Status CsNode::Init() {
  BP_ASSIGN_OR_RETURN(codec_, MakeCodec(config_.codec));
  dispatcher_ = std::make_unique<net::Dispatcher>(transport_);
  dispatcher_->Register(
      kCsQueryType, [this](const net::Message& m) { OnQuery(m); });
  dispatcher_->Register(
      kCsAnswerType, [this](const net::Message& m) { OnAnswer(m); });
  dispatcher_->Register(kCsDoneType,
                        [this](const net::Message& m) { OnDone(m); });
  return Status::OK();
}

Status CsNode::InitStorage(const storm::StormOptions& options) {
  BP_ASSIGN_OR_RETURN(storage_, storm::Storm::Open(options));
  return Status::OK();
}

Status CsNode::ShareObject(storm::ObjectId id, const Bytes& content) {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("storage not initialized");
  }
  return storage_->Put(id, content);
}

void CsNode::AddNeighborLocal(NodeId peer) { neighbors_.insert(peer); }

std::vector<NodeId> CsNode::Neighbors() const {
  return std::vector<NodeId>(neighbors_.begin(), neighbors_.end());
}

void CsNode::SendCompressed(NodeId dst, uint32_t type,
                            const Bytes& payload) {
  auto compressed = codec_->Compress(payload);
  if (!compressed.ok()) return;
  transport_->Send(dst, type, std::move(compressed).value());
}

Result<uint64_t> CsNode::IssueQuery(const std::string& keyword) {
  uint64_t query_id = (static_cast<uint64_t>(node_) << 32) | ++query_counter_;
  sessions_.emplace(query_id,
                    CsSession(query_id, transport_->clock().now()));

  RelayState state;
  state.is_base = true;
  state.parent = kInvalidNode;
  state.children.assign(neighbors_.begin(), neighbors_.end());
  state.keyword = keyword;
  state.local_done = true;  // The base does not scan its own store.
  relays_[query_id] = std::move(state);

  AdvanceForwarding(query_id);
  MaybeFinish(query_id);
  return query_id;
}

void CsNode::AdvanceForwarding(uint64_t query_id) {
  auto it = relays_.find(query_id);
  if (it == relays_.end()) return;
  RelayState& state = it->second;

  QueryMessage query;
  query.query_id = query_id;
  query.keyword = state.keyword;
  Bytes encoded = query.Encode();

  if (config_.single_thread) {
    // SCS: one outstanding child connection at a time.
    if (state.next_child < state.children.size()) {
      SendCompressed(state.children[state.next_child], kCsQueryType, encoded);
      ++state.next_child;
    }
  } else {
    // MCS: all children in parallel.
    while (state.next_child < state.children.size()) {
      SendCompressed(state.children[state.next_child], kCsQueryType, encoded);
      ++state.next_child;
    }
  }
}

void CsNode::OnQuery(const net::Message& msg) {
  auto payload = codec_->Decompress(msg.payload);
  if (!payload.ok()) return;
  auto query = QueryMessage::Decode(payload.value());
  if (!query.ok()) return;

  if (relays_.count(query->query_id) != 0) {
    // Already participating (cyclic overlay): unblock the sender at once.
    DoneMessage done;
    done.query_id = query->query_id;
    SendCompressed(msg.src, kCsDoneType, done.Encode());
    return;
  }

  RelayState state;
  state.parent = msg.src;
  state.keyword = query->keyword;
  for (NodeId n : neighbors_) {
    if (n != msg.src) state.children.push_back(n);
  }
  relays_[query->query_id] = std::move(state);

  uint64_t query_id = query->query_id;
  transport_->RunCpu(config_.query_handling_cost,
                              [this, query_id]() {
                                AdvanceForwarding(query_id);
                                StartLocalScan(query_id);
                              });
}

void CsNode::StartLocalScan(uint64_t query_id) {
  auto it = relays_.find(query_id);
  if (it == relays_.end()) return;
  RelayState& state = it->second;

  if (storage_ == nullptr) {
    state.local_done = true;
    MaybeFinish(query_id);
    return;
  }
  SimTime cost = 0;
  std::vector<storm::ObjectId> matches;
  bool answered = false;
  if (config_.use_index_search) {
    size_t touched = 0;
    auto indexed = storage_->IndexSearch(state.keyword, &touched);
    if (indexed.ok()) {
      cost = static_cast<SimTime>(touched) * config_.per_posting_cost;
      matches = std::move(indexed).value();
      answered = true;
    }
    // No index at this store: fall through to the scan.
  }
  if (!answered) {
    auto scan = storage_->ScanSearch(state.keyword);
    if (!scan.ok()) {
      state.local_done = true;
      MaybeFinish(query_id);
      return;
    }
    cost = static_cast<SimTime>(scan->objects_scanned) *
           config_.per_object_match_cost;
    matches = std::move(scan->matches);
  }
  transport_->RunCpu(cost, [this, query_id,
                                     matches = std::move(matches)]() {
    auto relay_it = relays_.find(query_id);
    if (relay_it == relays_.end()) return;
    RelayState& relay = relay_it->second;
    if (!matches.empty()) {
      AnswerMessage answer;
      answer.query_id = query_id;
      answer.origin = node_;
      for (storm::ObjectId id : matches) {
        core::ResultItem item;
        item.id = id;
        item.name = "obj-" + std::to_string(id);
        if (config_.ship_content) {
          auto content = storage_->Get(id);
          if (content.ok()) item.content = std::move(content).value();
        } else if (item.name.size() < config_.descriptor_bytes) {
          item.name.resize(config_.descriptor_bytes, ' ');
        }
        answer.items.push_back(std::move(item));
      }
      // Answers go to the parent: back along the query path.
      SendCompressed(relay.parent, kCsAnswerType, answer.Encode());
    }
    relay.local_done = true;
    MaybeFinish(query_id);
  });
}

void CsNode::OnAnswer(const net::Message& msg) {
  auto payload = codec_->Decompress(msg.payload);
  if (!payload.ok()) return;
  auto answer = AnswerMessage::Decode(payload.value());
  if (!answer.ok()) return;

  auto it = relays_.find(answer->query_id);
  if (it == relays_.end()) return;
  RelayState& state = it->second;

  if (state.is_base) {
    auto session_it = sessions_.find(answer->query_id);
    if (session_it == sessions_.end()) return;
    core::ResponseEvent event;
    event.time = transport_->clock().now();
    event.node = answer->origin;
    event.hops = 0;
    event.answers = answer->items.size();
    session_it->second.RecordAnswer(event);
    return;
  }
  // Intermediate: relay immediately toward the base (implementation 2).
  ++relayed_answers_;
  NodeId parent = state.parent;
  Bytes reencoded = answer->Encode();
  SimTime cost =
      config_.relay_cost +
      static_cast<SimTime>(static_cast<double>(reencoded.size()) *
                           config_.relay_per_byte_cost_us);
  transport_->RunCpu(
      cost, [this, parent, reencoded = std::move(reencoded)]() {
        SendCompressed(parent, kCsAnswerType, reencoded);
      });
}

void CsNode::OnDone(const net::Message& msg) {
  auto payload = codec_->Decompress(msg.payload);
  if (!payload.ok()) return;
  auto done = DoneMessage::Decode(payload.value());
  if (!done.ok()) return;

  auto it = relays_.find(done->query_id);
  if (it == relays_.end()) return;
  RelayState& state = it->second;
  ++state.children_done;
  if (config_.single_thread) AdvanceForwarding(done->query_id);
  MaybeFinish(done->query_id);
}

void CsNode::MaybeFinish(uint64_t query_id) {
  auto it = relays_.find(query_id);
  if (it == relays_.end()) return;
  RelayState& state = it->second;
  if (state.done_sent) return;
  if (!state.local_done) return;
  if (state.children_done < state.children.size()) return;

  state.done_sent = true;
  if (state.is_base) {
    auto session_it = sessions_.find(query_id);
    if (session_it != sessions_.end()) {
      session_it->second.MarkComplete(transport_->clock().now());
    }
    return;
  }
  DoneMessage done;
  done.query_id = query_id;
  SendCompressed(state.parent, kCsDoneType, done.Encode());
}

const CsSession* CsNode::FindSession(uint64_t query_id) const {
  auto it = sessions_.find(query_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace bestpeer::baseline
