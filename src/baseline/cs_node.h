#ifndef BESTPEER_BASELINE_CS_NODE_H_
#define BESTPEER_BASELINE_CS_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "core/messages.h"
#include "core/session.h"
#include "net/dispatcher.h"
#include "net/transport.h"
#include "storm/storm.h"
#include "util/sim_time.h"

namespace bestpeer::baseline {

/// Client/server wire message types.
constexpr uint32_t kCsQueryType = 0x43530001;
constexpr uint32_t kCsAnswerType = 0x43530002;
constexpr uint32_t kCsDoneType = 0x43530003;

/// Client/server baseline configuration.
struct CsConfig {
  /// Single-thread CS (SCS): a node queries its children one at a time,
  /// waiting for each subtree to complete before contacting the next.
  /// Multi-thread CS (MCS) fans out to all children in parallel.
  bool single_thread = false;
  SimTime per_object_match_cost = Micros(15);
  /// Fixed CPU to relay one answer message one hop toward the base node.
  SimTime relay_cost = Micros(500);
  /// Additional relay CPU per payload byte (store-and-forward copy
  /// through the server's I/O stack; deep paths pay this repeatedly —
  /// the §4.3 CS degradation).
  double relay_per_byte_cost_us = 0.5;
  /// Ship full object contents in answers (the counterpart of BestPeer's
  /// answer mode 1); false returns fixed-size match descriptors, the
  /// counterpart of mode 2 and of the paper's search-result lists.
  bool ship_content = true;
  /// Descriptor size when ship_content is false.
  size_t descriptor_bytes = 64;
  /// CPU to accept/parse one query at a server.
  SimTime query_handling_cost = Micros(200);
  std::string codec = "lzss";
  /// Answer queries from Storm::IndexSearch instead of the full scan,
  /// charging per posting touched (falls back to the scan when the
  /// store has no index). Mirrors BestPeerConfig::use_index_search so
  /// the CS baseline stays comparable.
  bool use_index_search = false;
  SimTime per_posting_cost = Micros(1);
};

/// Completion-tracked query state at the base node.
class CsSession {
 public:
  CsSession() = default;
  CsSession(uint64_t query_id, SimTime start)
      : query_id_(query_id), start_(start) {}

  void RecordAnswer(const core::ResponseEvent& event) {
    answers_.push_back(event);
  }
  void MarkComplete(SimTime t) {
    complete_ = true;
    complete_time_ = t;
  }

  uint64_t query_id() const { return query_id_; }
  SimTime start_time() const { return start_; }
  bool complete() const { return complete_; }
  const std::vector<core::ResponseEvent>& answers() const { return answers_; }

  size_t total_answers() const;
  size_t responder_count() const;

  /// Completion: when all answers have been received and the Done wave
  /// closed (relayed answers can trail the Done wave slightly, so take
  /// the later of the two).
  SimTime completion_time() const;

  /// Time until the last answer arrived.
  SimTime last_answer_time() const;

 private:
  uint64_t query_id_ = 0;
  SimTime start_ = 0;
  bool complete_ = false;
  SimTime complete_time_ = 0;
  std::vector<core::ResponseEvent> answers_;
};

/// The paper's Client/Server comparison model (§4): processes can be both
/// client and server, but *answers must return along the query path* —
/// each intermediate relays its subtree's answers toward the base node
/// (footnote 3, implementation 2: relay immediately). Queries are plain
/// messages (no code shipping), so CS wins on shallow topologies and
/// degrades with depth, exactly the Fig. 5 trade-off.
class CsNode {
 public:
  static Result<std::unique_ptr<CsNode>> Create(net::Transport* transport,
                                                CsConfig config);

  CsNode(const CsNode&) = delete;
  CsNode& operator=(const CsNode&) = delete;

  /// Opens this node's storage.
  Status InitStorage(const storm::StormOptions& options);
  Status ShareObject(storm::ObjectId id, const Bytes& content);

  /// Wires a neighbour locally (call on both endpoints).
  void AddNeighborLocal(NodeId peer);
  std::vector<NodeId> Neighbors() const;

  /// Starts a query from this node (it becomes the base).
  Result<uint64_t> IssueQuery(const std::string& keyword);

  const CsSession* FindSession(uint64_t query_id) const;

  NodeId node() const { return node_; }
  storm::Storm* storage() { return storage_.get(); }
  uint64_t relayed_answers() const { return relayed_answers_; }

 private:
  /// Per-query relay state at intermediates.
  struct RelayState {
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    size_t next_child = 0;      // SCS forwarding cursor.
    size_t children_done = 0;
    bool local_done = false;
    bool done_sent = false;
    bool is_base = false;
    std::string keyword;
  };

  CsNode(net::Transport* transport, CsConfig config);
  Status Init();

  void OnQuery(const net::Message& msg);
  void OnAnswer(const net::Message& msg);
  void OnDone(const net::Message& msg);

  /// Runs the local scan, then reports answers to the parent (or session).
  void StartLocalScan(uint64_t query_id);

  /// SCS: forward to the next unqueried child; MCS: to all children.
  void AdvanceForwarding(uint64_t query_id);

  /// Sends Done upstream once the local scan and all children completed.
  void MaybeFinish(uint64_t query_id);

  void SendCompressed(NodeId dst, uint32_t type, const Bytes& payload);

  net::Transport* transport_;
  NodeId node_;
  CsConfig config_;
  std::shared_ptr<const Codec> codec_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::unique_ptr<storm::Storm> storage_;

  std::set<NodeId> neighbors_;
  std::map<uint64_t, RelayState> relays_;
  std::map<uint64_t, CsSession> sessions_;
  uint32_t query_counter_ = 0;
  uint64_t relayed_answers_ = 0;
};

}  // namespace bestpeer::baseline

#endif  // BESTPEER_BASELINE_CS_NODE_H_
