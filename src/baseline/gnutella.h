#ifndef BESTPEER_BASELINE_GNUTELLA_H_
#define BESTPEER_BASELINE_GNUTELLA_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/session.h"
#include "net/dispatcher.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace bestpeer::baseline {

/// Gnutella descriptors travel as this sim message type; the Gnutella
/// header (GUID, function, TTL, Hops) is encoded inside the payload, as
/// on the real wire.
constexpr uint32_t kGnutellaDescriptorType = 0x474E5554;  // "GNUT"

/// Gnutella v0.4 payload descriptors.
enum class GnutellaFunction : uint8_t {
  kPing = 0x00,
  kPong = 0x01,
  kPush = 0x40,
  kQuery = 0x80,
  kQueryHit = 0x81,
};

/// 16-byte descriptor id, as in the real protocol.
using Guid = std::array<uint8_t, 16>;

/// A Gnutella descriptor (header + raw payload bytes).
struct GnutellaDescriptor {
  Guid guid = {};
  GnutellaFunction function = GnutellaFunction::kPing;
  uint8_t ttl = 0;
  uint8_t hops = 0;
  Bytes payload;

  Bytes Encode() const;
  static Result<GnutellaDescriptor> Decode(const Bytes& data);
};

/// Query payload: minimum speed (unused) + search keywords.
struct GnutellaQuery {
  uint16_t min_speed = 0;
  std::string keywords;

  Bytes Encode() const;
  static Result<GnutellaQuery> Decode(const Bytes& data);
};

/// QueryHit payload: responder + matching file entries. Routed back to
/// the initiator hop-by-hop along the reverse query path — the behaviour
/// Fig. 8 penalizes ("the list of files have to be transmitted through
/// the query traversal path!").
struct GnutellaQueryHit {
  NodeId responder = kInvalidNode;
  struct FileEntry {
    uint32_t index = 0;
    uint32_t size = 0;
    std::string name;
  };
  std::vector<FileEntry> files;

  Bytes Encode() const;
  static Result<GnutellaQueryHit> Decode(const Bytes& data);
};

/// Push payload: asks a (possibly firewalled) responder to open the data
/// connection itself. Routed hop-by-hop along the path its QueryHit
/// travelled, keyed by the responder's servent id.
struct GnutellaPush {
  NodeId target_servent = kInvalidNode;
  NodeId requester = kInvalidNode;
  uint32_t file_index = 0;

  Bytes Encode() const;
  static Result<GnutellaPush> Decode(const Bytes& data);
};

/// Out-of-band message a pushed servent sends straight to the requester
/// (models the servent opening the upload connection).
constexpr uint32_t kGnutellaPushOpenType = 0x474E5550;  // "GNUP"

/// Gnutella servant configuration.
struct GnutellaConfig {
  uint8_t default_ttl = 7;
  /// CPU to match the query against one shared file name. Slightly above
  /// BestPeer's per-object cost: FURI is "a full version program with a
  /// GUI interface" (paper §4.6), not a lean engine.
  SimTime per_file_match_cost = Micros(20);
  /// CPU to route one descriptor one hop.
  SimTime route_cost = Micros(800);
  /// Additional CPU per payload byte when relaying a QueryHit hop-by-hop
  /// (store-and-forward copy, same model as the CS relay).
  double relay_per_byte_cost_us = 0.5;
  /// Modelled on-wire size of one file entry in a QueryHit.
  size_t file_entry_bytes = 64;
};

/// Search bookkeeping at the initiating servant.
class GnutellaSession {
 public:
  GnutellaSession() = default;
  GnutellaSession(SimTime start) : start_(start) {}  // NOLINT

  void RecordHit(const core::ResponseEvent& event) {
    hits_.push_back(event);
  }

  const std::vector<core::ResponseEvent>& hits() const { return hits_; }
  size_t total_files() const;
  size_t responder_count() const;
  SimTime start_time() const { return start_; }
  /// Time from query to last QueryHit received.
  SimTime completion_time() const;

 private:
  SimTime start_ = 0;
  std::vector<core::ResponseEvent> hits_;
};

/// A Gnutella v0.4 servant (modelled on FURI, the paper's comparator):
/// fixed neighbour set, flood Queries with TTL/Hops, GUID routing tables,
/// QueryHits relayed along the reverse path. No reconfiguration —
/// "a node has a fixed set of peers".
class GnutellaNode {
 public:
  static Result<std::unique_ptr<GnutellaNode>> Create(
      net::Transport* transport, GnutellaConfig config);

  GnutellaNode(const GnutellaNode&) = delete;
  GnutellaNode& operator=(const GnutellaNode&) = delete;

  /// Wires a neighbour locally (call on both endpoints).
  void AddNeighborLocal(NodeId peer);
  std::vector<NodeId> Neighbors() const;

  /// Shares a text file by name (keyword search matches names, as FURI
  /// "can only evaluate keyword search on text files").
  void ShareFile(const std::string& name, uint32_t size_bytes = 1024);
  size_t shared_file_count() const { return files_.size(); }

  /// Floods a Query; returns the GUID key identifying the session.
  Result<uint64_t> IssueQuery(const std::string& keywords, uint8_t ttl = 0);

  const GnutellaSession* FindSession(uint64_t query_key) const;

  /// Sends a Ping (network discovery); Pongs route back like QueryHits.
  void SendPing();

  /// Sends a Push for `file_index` toward the servant that answered
  /// `query_key` (it must have produced a QueryHit we received). The
  /// pushed servant "opens a connection" back to us out-of-band.
  Status SendPush(uint64_t query_key, NodeId target_servent,
                  uint32_t file_index);

  /// Uploads opened toward this node in response to its Pushes.
  uint64_t push_opens_received() const { return push_opens_received_; }
  /// Pushes this servant honoured (as the target).
  uint64_t pushes_served() const { return pushes_served_; }

  NodeId node() const { return node_; }
  uint64_t descriptors_routed() const { return descriptors_routed_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t pongs_received() const { return pongs_received_; }

 private:
  GnutellaNode(net::Transport* transport,
               GnutellaConfig config);
  Status Init();

  void OnDescriptor(const net::Message& msg);
  void HandleQuery(const GnutellaDescriptor& desc, NodeId from);
  void HandleQueryHit(const GnutellaDescriptor& desc, NodeId from);
  void HandlePing(const GnutellaDescriptor& desc, NodeId from);
  void HandlePong(const GnutellaDescriptor& desc, NodeId from);
  void HandlePush(const GnutellaDescriptor& desc, NodeId from);

  /// Forwards `desc` to all neighbours except `skip` after route cost.
  void Flood(GnutellaDescriptor desc, NodeId skip);

  Guid MakeGuid();
  static uint64_t GuidKey(const Guid& guid);

  net::Transport* transport_;
  NodeId node_;
  GnutellaConfig config_;
  std::unique_ptr<net::Dispatcher> dispatcher_;

  std::set<NodeId> neighbors_;
  std::vector<std::pair<std::string, uint32_t>> files_;  // (name, size)

  /// GUID -> neighbour the descriptor arrived from (reverse route).
  std::map<uint64_t, NodeId> query_routes_;
  std::map<uint64_t, NodeId> ping_routes_;
  /// Responder servent id -> neighbour its QueryHit arrived from
  /// (forward route for Push descriptors).
  std::map<NodeId, NodeId> push_routes_;
  std::set<uint64_t> seen_;

  std::map<uint64_t, GnutellaSession> sessions_;
  uint64_t guid_counter_ = 0;
  uint64_t descriptors_routed_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t pongs_received_ = 0;
  uint64_t push_opens_received_ = 0;
  uint64_t pushes_served_ = 0;
};

}  // namespace bestpeer::baseline

#endif  // BESTPEER_BASELINE_GNUTELLA_H_
