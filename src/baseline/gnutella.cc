#include "baseline/gnutella.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/strings.h"

namespace bestpeer::baseline {

// ---- wire formats -----------------------------------------------------

Bytes GnutellaDescriptor::Encode() const {
  BinaryWriter w;
  w.WriteRaw(guid.data(), guid.size());
  w.WriteU8(static_cast<uint8_t>(function));
  w.WriteU8(ttl);
  w.WriteU8(hops);
  w.WriteBytes(payload);
  return w.Take();
}

Result<GnutellaDescriptor> GnutellaDescriptor::Decode(const Bytes& data) {
  BinaryReader r(data);
  GnutellaDescriptor d;
  BP_ASSIGN_OR_RETURN(Bytes guid, r.ReadRaw(16));
  std::copy(guid.begin(), guid.end(), d.guid.begin());
  BP_ASSIGN_OR_RETURN(uint8_t fn, r.ReadU8());
  switch (fn) {
    case 0x00:
      d.function = GnutellaFunction::kPing;
      break;
    case 0x01:
      d.function = GnutellaFunction::kPong;
      break;
    case 0x40:
      d.function = GnutellaFunction::kPush;
      break;
    case 0x80:
      d.function = GnutellaFunction::kQuery;
      break;
    case 0x81:
      d.function = GnutellaFunction::kQueryHit;
      break;
    default:
      return Status::Corruption("unknown gnutella function");
  }
  BP_ASSIGN_OR_RETURN(d.ttl, r.ReadU8());
  BP_ASSIGN_OR_RETURN(d.hops, r.ReadU8());
  BP_ASSIGN_OR_RETURN(d.payload, r.ReadBytes());
  return d;
}

Bytes GnutellaQuery::Encode() const {
  BinaryWriter w;
  w.WriteU16(min_speed);
  w.WriteString(keywords);
  return w.Take();
}

Result<GnutellaQuery> GnutellaQuery::Decode(const Bytes& data) {
  BinaryReader r(data);
  GnutellaQuery q;
  BP_ASSIGN_OR_RETURN(q.min_speed, r.ReadU16());
  BP_ASSIGN_OR_RETURN(q.keywords, r.ReadString());
  return q;
}

Bytes GnutellaPush::Encode() const {
  BinaryWriter w;
  w.WriteU32(target_servent);
  w.WriteU32(requester);
  w.WriteU32(file_index);
  return w.Take();
}

Result<GnutellaPush> GnutellaPush::Decode(const Bytes& data) {
  BinaryReader r(data);
  GnutellaPush p;
  BP_ASSIGN_OR_RETURN(p.target_servent, r.ReadU32());
  BP_ASSIGN_OR_RETURN(p.requester, r.ReadU32());
  BP_ASSIGN_OR_RETURN(p.file_index, r.ReadU32());
  return p;
}

Bytes GnutellaQueryHit::Encode() const {
  BinaryWriter w;
  w.WriteU32(responder);
  w.WriteVarint(files.size());
  for (const auto& f : files) {
    w.WriteU32(f.index);
    w.WriteU32(f.size);
    w.WriteString(f.name);
  }
  return w.Take();
}

Result<GnutellaQueryHit> GnutellaQueryHit::Decode(const Bytes& data) {
  BinaryReader r(data);
  GnutellaQueryHit h;
  BP_ASSIGN_OR_RETURN(h.responder, r.ReadU32());
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  h.files.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    FileEntry f;
    BP_ASSIGN_OR_RETURN(f.index, r.ReadU32());
    BP_ASSIGN_OR_RETURN(f.size, r.ReadU32());
    BP_ASSIGN_OR_RETURN(f.name, r.ReadString());
    h.files.push_back(std::move(f));
  }
  return h;
}

// ---- sessions ----------------------------------------------------------

size_t GnutellaSession::total_files() const {
  size_t n = 0;
  for (const auto& h : hits_) n += h.answers;
  return n;
}

size_t GnutellaSession::responder_count() const {
  std::set<NodeId> seen;
  for (const auto& h : hits_) seen.insert(h.node);
  return seen.size();
}

SimTime GnutellaSession::completion_time() const {
  SimTime last = start_;
  for (const auto& h : hits_) last = std::max(last, h.time);
  return last - start_;
}

// ---- servant -----------------------------------------------------------

GnutellaNode::GnutellaNode(net::Transport* transport, GnutellaConfig config)
    : transport_(transport), node_(transport->local()), config_(config) {}

Result<std::unique_ptr<GnutellaNode>> GnutellaNode::Create(
    net::Transport* transport, GnutellaConfig config) {
  auto owned =
      std::unique_ptr<GnutellaNode>(new GnutellaNode(transport, config));
  BP_RETURN_IF_ERROR(owned->Init());
  return owned;
}

Status GnutellaNode::Init() {
  dispatcher_ = std::make_unique<net::Dispatcher>(transport_);
  dispatcher_->Register(
      kGnutellaDescriptorType,
      [this](const net::Message& m) { OnDescriptor(m); });
  dispatcher_->Register(kGnutellaPushOpenType,
                        [this](const net::Message&) {
                          ++push_opens_received_;
                        });
  return Status::OK();
}

void GnutellaNode::AddNeighborLocal(NodeId peer) {
  neighbors_.insert(peer);
}

std::vector<NodeId> GnutellaNode::Neighbors() const {
  return std::vector<NodeId>(neighbors_.begin(), neighbors_.end());
}

void GnutellaNode::ShareFile(const std::string& name, uint32_t size_bytes) {
  files_.emplace_back(name, size_bytes);
}

Guid GnutellaNode::MakeGuid() {
  Guid guid = {};
  uint64_t a = Mix64((static_cast<uint64_t>(node_) << 32) | ++guid_counter_);
  uint64_t b = Mix64(a ^ 0x9E3779B97F4A7C15ULL);
  std::memcpy(guid.data(), &a, 8);
  std::memcpy(guid.data() + 8, &b, 8);
  return guid;
}

uint64_t GnutellaNode::GuidKey(const Guid& guid) {
  uint64_t key;
  std::memcpy(&key, guid.data(), 8);
  return key;
}

Result<uint64_t> GnutellaNode::IssueQuery(const std::string& keywords,
                                          uint8_t ttl) {
  if (ttl == 0) ttl = config_.default_ttl;
  GnutellaDescriptor desc;
  desc.guid = MakeGuid();
  desc.function = GnutellaFunction::kQuery;
  desc.ttl = ttl;
  desc.hops = 0;
  GnutellaQuery query;
  query.keywords = keywords;
  desc.payload = query.Encode();

  uint64_t key = GuidKey(desc.guid);
  seen_.insert(key);
  sessions_.emplace(key, GnutellaSession(transport_->clock().now()));
  Flood(desc, /*skip=*/node_);
  return key;
}

void GnutellaNode::SendPing() {
  GnutellaDescriptor desc;
  desc.guid = MakeGuid();
  desc.function = GnutellaFunction::kPing;
  desc.ttl = config_.default_ttl;
  desc.hops = 0;
  seen_.insert(GuidKey(desc.guid));
  Flood(desc, node_);
}

void GnutellaNode::Flood(GnutellaDescriptor desc, NodeId skip) {
  for (NodeId n : neighbors_) {
    if (n == skip) continue;
    GnutellaDescriptor copy = desc;
    transport_->RunCpu(config_.route_cost, [this, n, copy]() {
      transport_->Send(n, kGnutellaDescriptorType, copy.Encode());
    });
  }
}

void GnutellaNode::OnDescriptor(const net::Message& msg) {
  auto desc = GnutellaDescriptor::Decode(msg.payload);
  if (!desc.ok()) return;
  switch (desc->function) {
    case GnutellaFunction::kQuery:
      HandleQuery(desc.value(), msg.src);
      break;
    case GnutellaFunction::kQueryHit:
      HandleQueryHit(desc.value(), msg.src);
      break;
    case GnutellaFunction::kPing:
      HandlePing(desc.value(), msg.src);
      break;
    case GnutellaFunction::kPong:
      HandlePong(desc.value(), msg.src);
      break;
    case GnutellaFunction::kPush:
      HandlePush(desc.value(), msg.src);
      break;
  }
}

void GnutellaNode::HandleQuery(const GnutellaDescriptor& desc,
                               NodeId from) {
  uint64_t key = GuidKey(desc.guid);
  if (!seen_.insert(key).second) {
    ++duplicates_dropped_;
    return;
  }
  // Remember the reverse route for QueryHits.
  query_routes_[key] = from;

  // Forward the query (TTL permitting).
  if (desc.ttl > 1) {
    GnutellaDescriptor fwd = desc;
    fwd.ttl = static_cast<uint8_t>(desc.ttl - 1);
    fwd.hops = static_cast<uint8_t>(desc.hops + 1);
    Flood(fwd, from);
    ++descriptors_routed_;
  }

  // Match against the local file names.
  auto query = GnutellaQuery::Decode(desc.payload);
  if (!query.ok()) return;
  GnutellaQueryHit hit;
  hit.responder = node_;
  uint32_t index = 0;
  for (const auto& [name, size] : files_) {
    if (ContainsKeyword(name, query->keywords)) {
      GnutellaQueryHit::FileEntry entry;
      entry.index = index;
      entry.size = size;
      entry.name = name;
      // Pad names to the modelled per-entry wire size.
      if (entry.name.size() < config_.file_entry_bytes) {
        entry.name.resize(config_.file_entry_bytes, ' ');
      }
      hit.files.push_back(std::move(entry));
    }
    ++index;
  }
  SimTime scan_cost = static_cast<SimTime>(files_.size()) *
                      config_.per_file_match_cost;
  if (hit.files.empty()) {
    // Still charge the scan.
    transport_->RunCpu(scan_cost, []() {});
    return;
  }
  GnutellaDescriptor reply;
  reply.guid = desc.guid;
  reply.function = GnutellaFunction::kQueryHit;
  reply.ttl = static_cast<uint8_t>(desc.hops + 1);
  reply.hops = 0;
  reply.payload = hit.Encode();
  // QueryHit goes back the way the Query came: to `from`.
  transport_->RunCpu(scan_cost, [this, from, reply]() {
    transport_->Send(from, kGnutellaDescriptorType, reply.Encode());
  });
}

void GnutellaNode::HandleQueryHit(const GnutellaDescriptor& desc,
                                  NodeId from) {
  uint64_t key = GuidKey(desc.guid);
  // Remember which neighbour can reach the responder (Push routing).
  {
    auto hit = GnutellaQueryHit::Decode(desc.payload);
    if (hit.ok()) push_routes_[hit->responder] = from;
  }
  auto session_it = sessions_.find(key);
  if (session_it != sessions_.end()) {
    // We initiated this query: consume the hit.
    auto hit = GnutellaQueryHit::Decode(desc.payload);
    if (!hit.ok()) return;
    core::ResponseEvent event;
    event.time = transport_->clock().now();
    event.node = hit->responder;
    event.hops = desc.hops;
    event.answers = hit->files.size();
    session_it->second.RecordHit(event);
    return;
  }
  // Route back along the reverse path.
  auto route = query_routes_.find(key);
  if (route == query_routes_.end()) return;  // No route: drop.
  if (desc.ttl == 0) return;
  GnutellaDescriptor fwd = desc;
  fwd.ttl = static_cast<uint8_t>(desc.ttl - 1);
  fwd.hops = static_cast<uint8_t>(desc.hops + 1);
  NodeId next = route->second;
  ++descriptors_routed_;
  SimTime cost =
      config_.route_cost +
      static_cast<SimTime>(static_cast<double>(desc.payload.size()) *
                           config_.relay_per_byte_cost_us);
  transport_->RunCpu(cost, [this, next, fwd]() {
    transport_->Send(next, kGnutellaDescriptorType, fwd.Encode());
  });
}

void GnutellaNode::HandlePing(const GnutellaDescriptor& desc,
                              NodeId from) {
  uint64_t key = GuidKey(desc.guid);
  if (!seen_.insert(key).second) {
    ++duplicates_dropped_;
    return;
  }
  ping_routes_[key] = from;
  if (desc.ttl > 1) {
    GnutellaDescriptor fwd = desc;
    fwd.ttl = static_cast<uint8_t>(desc.ttl - 1);
    fwd.hops = static_cast<uint8_t>(desc.hops + 1);
    Flood(fwd, from);
  }
  // Answer with a Pong carrying our file count (as servants do).
  GnutellaDescriptor pong;
  pong.guid = desc.guid;
  pong.function = GnutellaFunction::kPong;
  pong.ttl = static_cast<uint8_t>(desc.hops + 1);
  pong.hops = 0;
  BinaryWriter w;
  w.WriteU32(node_);
  w.WriteU32(static_cast<uint32_t>(files_.size()));
  pong.payload = w.Take();
  transport_->RunCpu(config_.route_cost, [this, from, pong]() {
    transport_->Send(from, kGnutellaDescriptorType, pong.Encode());
  });
}

void GnutellaNode::HandlePong(const GnutellaDescriptor& desc,
                              NodeId from) {
  (void)from;
  uint64_t key = GuidKey(desc.guid);
  if (sessions_.count(key) != 0 || ping_routes_.count(key) == 0) {
    ++pongs_received_;
    return;
  }
  auto route = ping_routes_.find(key);
  if (desc.ttl == 0) return;
  GnutellaDescriptor fwd = desc;
  fwd.ttl = static_cast<uint8_t>(desc.ttl - 1);
  fwd.hops = static_cast<uint8_t>(desc.hops + 1);
  NodeId next = route->second;
  transport_->RunCpu(config_.route_cost, [this, next, fwd]() {
    transport_->Send(next, kGnutellaDescriptorType, fwd.Encode());
  });
}

Status GnutellaNode::SendPush(uint64_t query_key, NodeId target_servent,
                              uint32_t file_index) {
  if (sessions_.count(query_key) == 0) {
    return Status::NotFound("not the initiator of that query");
  }
  auto route = push_routes_.find(target_servent);
  if (route == push_routes_.end()) {
    return Status::NotFound("no QueryHit route to servent " +
                            std::to_string(target_servent));
  }
  GnutellaDescriptor desc;
  desc.guid = MakeGuid();
  desc.function = GnutellaFunction::kPush;
  desc.ttl = config_.default_ttl;
  desc.hops = 0;
  GnutellaPush push;
  push.target_servent = target_servent;
  push.requester = node_;
  push.file_index = file_index;
  desc.payload = push.Encode();
  NodeId next = route->second;
  transport_->RunCpu(config_.route_cost, [this, next, desc]() {
    transport_->Send(next, kGnutellaDescriptorType, desc.Encode());
  });
  return Status::OK();
}

void GnutellaNode::HandlePush(const GnutellaDescriptor& desc,
                              NodeId from) {
  (void)from;
  auto push = GnutellaPush::Decode(desc.payload);
  if (!push.ok()) return;
  if (push->target_servent == node_) {
    // We are being pushed: open the data connection to the requester
    // ourselves (modelled as one out-of-band message carrying the file).
    ++pushes_served_;
    uint32_t size = 1024;
    if (push->file_index < files_.size()) {
      size = files_[push->file_index].second;
    }
    NodeId requester = push->requester;
    transport_->RunCpu(
        config_.route_cost, [this, requester, size]() {
          transport_->Send(requester, kGnutellaPushOpenType,
                         Bytes(size, 0));
        });
    return;
  }
  // Forward along the recorded QueryHit path.
  if (desc.ttl == 0) return;
  auto route = push_routes_.find(push->target_servent);
  if (route == push_routes_.end()) return;
  GnutellaDescriptor fwd = desc;
  fwd.ttl = static_cast<uint8_t>(desc.ttl - 1);
  fwd.hops = static_cast<uint8_t>(desc.hops + 1);
  NodeId next = route->second;
  ++descriptors_routed_;
  transport_->RunCpu(config_.route_cost, [this, next, fwd]() {
    transport_->Send(next, kGnutellaDescriptorType, fwd.Encode());
  });
}

const GnutellaSession* GnutellaNode::FindSession(uint64_t query_key) const {
  auto it = sessions_.find(query_key);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace bestpeer::baseline
