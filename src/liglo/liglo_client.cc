#include "liglo/liglo_client.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/flight_recorder.h"
#include "util/logging.h"

namespace bestpeer::liglo {

LigloClient::LigloClient(net::Transport* transport,
                         net::Dispatcher* dispatcher, IpDirectory* ips,
                         LigloClientOptions options)
    : transport_(transport),
      node_(transport->local()),
      ips_(ips),
      options_(options),
      jitter_rng_(options.jitter_seed ^
                  (static_cast<uint64_t>(node_) << 32 | node_)) {
  if (options_.metrics != nullptr) {
    metrics::Registry* reg = options_.metrics;
    timeouts_c_ = reg->GetCounter("liglo.timeouts");
    retries_c_ = reg->GetCounter("liglo.retries");
    late_replies_c_ = reg->GetCounter("liglo.late_replies");
  }
  dispatcher->Register(kLigloRegisterResp, [this](const net::Message& m) {
    OnRegisterResp(m);
  });
  dispatcher->Register(kLigloUpdateResp, [this](const net::Message& m) {
    OnUpdateResp(m);
  });
  dispatcher->Register(kLigloResolveResp, [this](const net::Message& m) {
    OnResolveResp(m);
  });
  dispatcher->Register(kLigloPeersResp, [this](const net::Message& m) {
    OnPeersResp(m);
  });
  dispatcher->Register(kLigloPing,
                       [this](const net::Message& m) { OnPing(m); });
}

LigloClient::Pending LigloClient::TakePending(uint64_t id, bool* found) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    *found = false;
    return Pending{};
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  *found = true;
  return p;
}

void LigloClient::ArmTimeout(uint64_t id) {
  transport_->clock().ScheduleAfter(options_.request_timeout, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // Already answered.
    ++timeouts_;
    timeouts_c_->Increment();
    Pending& p = it->second;
    if (p.attempt < options_.max_retries && Retryable(p.kind)) {
      // Recovery path: keep the request pending and resend after an
      // exponential backoff with deterministic jitter. A straggling reply
      // to an earlier attempt can still complete the request while we
      // back off — the resend then finds nothing pending and is dropped.
      ++p.attempt;
      ++retries_;
      retries_c_->Increment();
      if (obs::FlightRecorder* flight = transport_->flight()) {
        obs::FlightEvent e;
        e.ts = transport_->clock().now();
        e.type = obs::EventType::kLigloRetry;
        e.node = node_;
        e.peer = p.server;
        e.a = id;
        e.b = p.attempt;
        flight->Record(e);
      }
      SimTime delay = options_.retry_backoff * (SimTime{1} << (p.attempt - 1));
      if (options_.retry_jitter > 0) {
        const double spread =
            1.0 - options_.retry_jitter +
            2.0 * options_.retry_jitter * jitter_rng_.NextDouble();
        delay = std::max<SimTime>(1, static_cast<SimTime>(
                                         static_cast<double>(delay) * spread));
      }
      transport_->clock().ScheduleAfter(delay,
                                          [this, id]() { SendAttempt(id); });
      return;
    }
    Pending done = std::move(it->second);
    pending_.erase(it);
    Status timeout = Status::Unavailable("LIGLO request timed out");
    switch (done.kind) {
      case PendingKind::kRegister:
        if (done.on_register) done.on_register(timeout);
        break;
      case PendingKind::kUpdate:
        if (done.on_status) done.on_status(timeout);
        break;
      case PendingKind::kResolve:
        if (done.on_resolve) done.on_resolve(timeout);
        break;
      case PendingKind::kPeers:
        if (done.on_peers) done.on_peers(timeout);
        break;
    }
  });
}

void LigloClient::StartRequest(uint64_t id, Pending pending) {
  // No online short-circuit on purpose: a client cannot know the server
  // is down, so the timeout (and retry) path exercises realistically.
  pending_[id] = std::move(pending);
  SendAttempt(id);
}

void LigloClient::SendAttempt(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // Answered while backing off.
  transport_->Send(it->second.server, it->second.msg_type,
                   Bytes(it->second.payload));
  ArmTimeout(id);
}

void LigloClient::Register(NodeId liglo_server, IpAddress my_ip,
                           RegisterCallback callback) {
  uint64_t id = next_request_id_++;
  Pending p;
  p.kind = PendingKind::kRegister;
  p.on_register = std::move(callback);
  home_server_ = liglo_server;
  current_ip_ = my_ip;

  RegisterRequest req;
  req.request_id = id;
  req.ip = my_ip;
  p.server = liglo_server;
  p.msg_type = kLigloRegisterReq;
  p.payload = req.Encode();
  StartRequest(id, std::move(p));
}

void LigloClient::RegisterWithFallback(
    const std::vector<NodeId>& servers, IpAddress my_ip,
    RegisterCallback callback) {
  if (servers.empty()) {
    if (callback) {
      callback(Status::InvalidArgument("no LIGLO servers to try"));
    }
    return;
  }
  auto remaining =
      std::make_shared<std::vector<NodeId>>(servers.begin() + 1,
                                                 servers.end());
  Register(servers.front(), my_ip,
           [this, my_ip, remaining, callback](
               Result<RegisterOutcome> outcome) {
             if (outcome.ok() || remaining->empty()) {
               if (callback) callback(std::move(outcome));
               return;
             }
             RegisterWithFallback(*remaining, my_ip, callback);
           });
}

void LigloClient::UpdateAddress(IpAddress my_ip, bool online,
                                StatusCallback callback) {
  if (!registered()) {
    if (callback) {
      callback(Status::FailedPrecondition("not registered with a LIGLO"));
    }
    return;
  }
  uint64_t id = next_request_id_++;
  Pending p;
  p.kind = PendingKind::kUpdate;
  p.on_status = std::move(callback);
  current_ip_ = my_ip;

  UpdateRequest req;
  req.request_id = id;
  req.bpid = bpid_;
  req.ip = my_ip;
  req.online = online;
  p.server = home_server_;
  p.msg_type = kLigloUpdateReq;
  p.payload = req.Encode();
  StartRequest(id, std::move(p));
}

void LigloClient::Resolve(const Bpid& peer, ResolveCallback callback) {
  uint64_t id = next_request_id_++;
  Pending p;
  p.kind = PendingKind::kResolve;
  p.on_resolve = std::move(callback);

  ResolveRequest req;
  req.request_id = id;
  req.bpid = peer;
  // The peer's home LIGLO has a fixed address: its liglo_id is the node.
  p.server = static_cast<NodeId>(peer.liglo_id);
  p.msg_type = kLigloResolveReq;
  p.payload = req.Encode();
  StartRequest(id, std::move(p));
}

void LigloClient::Rejoin(IpAddress my_ip, const std::vector<Bpid>& peers,
                         RejoinCallback callback) {
  // Step 1: push our (possibly new) IP to our home LIGLO.
  UpdateAddress(my_ip, /*online=*/true, [this, peers,
                                         callback](Status status) {
    if (!status.ok()) {
      if (callback) callback(status);
      return;
    }
    // Step 2: resolve each peer through its registered LIGLO.
    auto outcome = std::make_shared<RejoinOutcome>();
    outcome->peers.resize(peers.size());
    auto remaining = std::make_shared<size_t>(peers.size());
    if (peers.empty()) {
      if (callback) callback(*outcome);
      return;
    }
    for (size_t i = 0; i < peers.size(); ++i) {
      Resolve(peers[i], [i, outcome, remaining,
                         callback](Result<ResolveOutcome> result) {
        if (result.ok()) {
          outcome->peers[i] = result.value();
        } else {
          outcome->peers[i] =
              ResolveOutcome{PeerState::kUnknown, kInvalidIp};
        }
        if (--*remaining == 0 && callback) callback(*outcome);
      });
    }
  });
}

void LigloClient::DiscoverPeers(PeersCallback callback) {
  if (!registered()) {
    if (callback) {
      callback(Status::FailedPrecondition("not registered with a LIGLO"));
    }
    return;
  }
  uint64_t id = next_request_id_++;
  Pending p;
  p.kind = PendingKind::kPeers;
  p.on_peers = std::move(callback);

  PeersRequest req;
  req.request_id = id;
  req.requester = bpid_;
  p.server = home_server_;
  p.msg_type = kLigloPeersReq;
  p.payload = req.Encode();
  StartRequest(id, std::move(p));
}

void LigloClient::OnPeersResp(const net::Message& msg) {
  auto resp = PeersResponse::Decode(msg.payload);
  if (!resp.ok()) return;
  bool found = false;
  Pending p = TakePending(resp->request_id, &found);
  if (!found) {
    NoteLateReply();
    return;
  }
  if (p.kind != PendingKind::kPeers) return;
  if (p.on_peers) p.on_peers(std::move(resp->peers));
}

void LigloClient::OnRegisterResp(const net::Message& msg) {
  auto resp = RegisterResponse::Decode(msg.payload);
  if (!resp.ok()) return;
  bool found = false;
  Pending p = TakePending(resp->request_id, &found);
  if (!found) {
    NoteLateReply();
    return;
  }
  if (p.kind != PendingKind::kRegister) return;
  if (!resp->accepted) {
    if (p.on_register) {
      p.on_register(
          Status::ResourceExhausted("LIGLO server at capacity"));
    }
    return;
  }
  bpid_ = resp->bpid;
  if (p.on_register) {
    p.on_register(RegisterOutcome{resp->bpid, resp->peers});
  }
}

void LigloClient::OnUpdateResp(const net::Message& msg) {
  auto resp = UpdateResponse::Decode(msg.payload);
  if (!resp.ok()) return;
  bool found = false;
  Pending p = TakePending(resp->request_id, &found);
  if (!found) {
    NoteLateReply();
    return;
  }
  if (p.kind != PendingKind::kUpdate) return;
  if (p.on_status) {
    p.on_status(resp->ok ? Status::OK()
                         : Status::NotFound("LIGLO does not know us"));
  }
}

void LigloClient::OnResolveResp(const net::Message& msg) {
  auto resp = ResolveResponse::Decode(msg.payload);
  if (!resp.ok()) return;
  bool found = false;
  Pending p = TakePending(resp->request_id, &found);
  if (!found) {
    NoteLateReply();
    return;
  }
  if (p.kind != PendingKind::kResolve) return;
  if (p.on_resolve) {
    p.on_resolve(ResolveOutcome{resp->state, resp->ip});
  }
}

void LigloClient::OnPing(const net::Message& msg) {
  auto ping = PingMessage::Decode(msg.payload);
  if (!ping.ok()) return;
  PongMessage pong;
  pong.nonce = ping->nonce;
  pong.bpid = bpid_;
  pong.ip = current_ip_;
  transport_->Send(msg.src, kLigloPong, pong.Encode());
}

}  // namespace bestpeer::liglo
