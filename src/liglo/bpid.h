#ifndef BESTPEER_LIGLO_BPID_H_
#define BESTPEER_LIGLO_BPID_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::liglo {

/// A simulated network address ("IP"). Nodes with variable connectivity
/// get a different IpAddress each session; the physical NodeId stays
/// fixed (it models the machine, not its address).
using IpAddress = uint32_t;

/// Sentinel for "no address".
constexpr IpAddress kInvalidIp = 0;

/// BestPeer global identity (paper §2): a (LIGLOID, NodeID) pair, where
/// LIGLOID identifies the issuing LIGLO server (its fixed address) and
/// NodeID is unique within that server. A BPID recognizes a node across
/// IP changes.
struct Bpid {
  uint32_t liglo_id = 0;
  uint32_t node_id = 0;

  friend auto operator<=>(const Bpid&, const Bpid&) = default;

  bool IsValid() const { return liglo_id != 0 || node_id != 0; }

  /// "liglo/node", e.g. "3/17".
  std::string ToString() const;

  /// Parses the ToString format.
  static Result<Bpid> Parse(std::string_view text);

  void EncodeTo(BinaryWriter& writer) const;
  static Result<Bpid> DecodeFrom(BinaryReader& reader);
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_BPID_H_
