#include "liglo/liglo_server.h"

#include <utility>

#include "util/logging.h"

namespace bestpeer::liglo {

LigloServer::LigloServer(net::Transport* transport,
                         net::Dispatcher* dispatcher, IpDirectory* ips,
                         LigloServerOptions options)
    : transport_(transport),
      node_(transport->local()),
      ips_(ips),
      options_(options),
      sample_rng_(options.sample_seed) {
  dispatcher->Register(kLigloRegisterReq,
                       [this](const net::Message& m) { OnRegister(m); });
  dispatcher->Register(kLigloUpdateReq,
                       [this](const net::Message& m) { OnUpdate(m); });
  dispatcher->Register(kLigloResolveReq,
                       [this](const net::Message& m) { OnResolve(m); });
  dispatcher->Register(kLigloPeersReq,
                       [this](const net::Message& m) { OnPeers(m); });
  dispatcher->Register(kLigloPong,
                       [this](const net::Message& m) { OnPong(m); });
}

std::vector<PeerEntry> LigloServer::SampleOnlineMembers(size_t count,
                                                        uint32_t exclude) {
  std::vector<PeerEntry> sample;
  size_t seen = 0;
  for (const auto& [id, m] : members_) {
    if (!m.online || id == exclude) continue;
    PeerEntry entry{Bpid{node_, id}, m.ip};
    if (sample.size() < count) {
      sample.push_back(entry);
    } else {
      size_t j = sample_rng_.NextBounded(seen + 1);
      if (j < count) sample[j] = entry;
    }
    ++seen;
  }
  return sample;
}

void LigloServer::OnPeers(const net::Message& msg) {
  auto req = PeersRequest::Decode(msg.payload);
  if (!req.ok()) return;
  PeersResponse resp;
  resp.request_id = req->request_id;
  resp.peers =
      SampleOnlineMembers(options_.initial_peer_count, req->requester.node_id);
  Reply(msg.src, kLigloPeersResp, resp.Encode());
}

void LigloServer::Reply(NodeId dst, uint32_t type, Bytes payload) {
  transport_->RunCpu(
      options_.handling_cost,
      [this, dst, type, payload = std::move(payload)]() mutable {
        transport_->Send(dst, type, std::move(payload));
      });
}

void LigloServer::OnRegister(const net::Message& msg) {
  auto req = RegisterRequest::Decode(msg.payload);
  if (!req.ok()) {
    BP_LOG(Warn) << "bad register request: " << req.status().ToString();
    return;
  }
  RegisterResponse resp;
  resp.request_id = req->request_id;
  if (options_.capacity != 0 && members_.size() >= options_.capacity) {
    resp.accepted = false;
    ++rejections_;
    Reply(msg.src, kLigloRegisterResp, resp.Encode());
    return;
  }
  uint32_t member_id = next_member_id_++;
  Member member;
  member.ip = req->ip;
  member.online = true;
  member.last_seen = transport_->clock().now();

  resp.accepted = true;
  resp.bpid = Bpid{node_, member_id};

  // Hand the newcomer a random sample of online members as direct peers
  // (reservoir sampling, so no member becomes a mega-hub).
  resp.peers = SampleOnlineMembers(options_.initial_peer_count, member_id);
  members_[member_id] = member;
  ++registrations_;
  Reply(msg.src, kLigloRegisterResp, resp.Encode());
}

void LigloServer::OnUpdate(const net::Message& msg) {
  auto req = UpdateRequest::Decode(msg.payload);
  if (!req.ok()) {
    BP_LOG(Warn) << "bad update request: " << req.status().ToString();
    return;
  }
  UpdateResponse resp;
  resp.request_id = req->request_id;
  auto it = members_.find(req->bpid.node_id);
  if (req->bpid.liglo_id != node_ || it == members_.end()) {
    resp.ok = false;
  } else {
    it->second.ip = req->ip;
    it->second.online = req->online;
    it->second.last_seen = transport_->clock().now();
    resp.ok = true;
  }
  Reply(msg.src, kLigloUpdateResp, resp.Encode());
}

void LigloServer::OnResolve(const net::Message& msg) {
  auto req = ResolveRequest::Decode(msg.payload);
  if (!req.ok()) {
    BP_LOG(Warn) << "bad resolve request: " << req.status().ToString();
    return;
  }
  ResolveResponse resp;
  resp.request_id = req->request_id;
  auto it = members_.find(req->bpid.node_id);
  if (req->bpid.liglo_id != node_ || it == members_.end()) {
    resp.state = PeerState::kUnknown;
  } else if (it->second.online) {
    resp.state = PeerState::kOnline;
    resp.ip = it->second.ip;
  } else {
    resp.state = PeerState::kOffline;
  }
  ++resolves_served_;
  Reply(msg.src, kLigloResolveResp, resp.Encode());
}

void LigloServer::OnPong(const net::Message& msg) {
  auto pong = PongMessage::Decode(msg.payload);
  if (!pong.ok()) return;
  auto it = members_.find(pong->bpid.node_id);
  if (it == members_.end()) return;
  if (it->second.pending_ping_nonce != pong->nonce) return;
  it->second.pending_ping_nonce = 0;
  it->second.online = true;
  it->second.ip = pong->ip;
  it->second.last_seen = transport_->clock().now();
}

void LigloServer::StartSweep() {
  if (options_.sweep_interval <= 0 || sweeping_) return;
  sweeping_ = true;
  transport_->clock().ScheduleAfter(options_.sweep_interval,
                                      [this]() { DoSweep(); });
}

void LigloServer::DoSweep() {
  if (!sweeping_) return;
  for (auto& [id, member] : members_) {
    if (!member.online) continue;
    auto target = ips_->Resolve(member.ip);
    if (!target.ok()) {
      // Address no longer valid on the LAN: the peer is gone.
      member.online = false;
      continue;
    }
    uint64_t nonce = next_nonce_++;
    member.pending_ping_nonce = nonce;
    PingMessage ping;
    ping.nonce = nonce;
    transport_->Send(target.value(), kLigloPing, ping.Encode());
    // If no pong clears the nonce in time, mark the member offline.
    uint32_t member_id = id;
    transport_->clock().ScheduleAfter(
        options_.ping_timeout, [this, member_id, nonce]() {
          auto it = members_.find(member_id);
          if (it == members_.end()) return;
          if (it->second.pending_ping_nonce == nonce) {
            it->second.online = false;
            it->second.pending_ping_nonce = 0;
          }
        });
  }
  transport_->clock().ScheduleAfter(options_.sweep_interval,
                                      [this]() { DoSweep(); });
}

size_t LigloServer::online_count() const {
  size_t n = 0;
  for (const auto& [id, m] : members_) {
    if (m.online) ++n;
  }
  return n;
}

Result<PeerState> LigloServer::MemberState(const Bpid& bpid) const {
  auto it = members_.find(bpid.node_id);
  if (bpid.liglo_id != node_ || it == members_.end()) {
    return Status::NotFound("not a member: " + bpid.ToString());
  }
  return it->second.online ? PeerState::kOnline : PeerState::kOffline;
}

Result<IpAddress> LigloServer::MemberIp(const Bpid& bpid) const {
  auto it = members_.find(bpid.node_id);
  if (bpid.liglo_id != node_ || it == members_.end()) {
    return Status::NotFound("not a member: " + bpid.ToString());
  }
  return it->second.ip;
}

}  // namespace bestpeer::liglo
