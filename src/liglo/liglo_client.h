#ifndef BESTPEER_LIGLO_LIGLO_CLIENT_H_
#define BESTPEER_LIGLO_LIGLO_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "liglo/bpid.h"
#include "liglo/ip_directory.h"
#include "liglo/liglo_protocol.h"
#include "net/dispatcher.h"
#include "net/transport.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace bestpeer::liglo {

/// Client-side knobs.
struct LigloClientOptions {
  /// Requests with no response within this window fail as Unavailable
  /// (covers LIGLO-server failure: peers keep working, paper §3.4).
  SimTime request_timeout = Seconds(2);

  /// Resends after a timeout for register/resolve/peers requests before
  /// the callback fails (update notices stay fire-once). 0 keeps the
  /// single-attempt behaviour; under message loss, retries are what let a
  /// node (re)join at all.
  int max_retries = 0;

  /// Delay before the first resend; doubles with every further attempt.
  SimTime retry_backoff = Millis(200);

  /// +/- fraction of deterministic jitter applied to each backoff delay,
  /// de-synchronising clients that timed out together.
  double retry_jitter = 0.2;

  /// Seed of the per-client jitter stream (mixed with the node id).
  uint64_t jitter_seed = 0x1B07;

  /// Metrics sink (not owned; must outlive the client). nullptr routes
  /// increments to no-op handles.
  metrics::Registry* metrics = nullptr;
};

/// Node-side LIGLO stub: registration, address updates, BPID resolution,
/// and the rejoin protocol of §2. Also answers the server's liveness
/// pings. All calls are asynchronous; callbacks fire from the simulator.
class LigloClient {
 public:
  struct RegisterOutcome {
    Bpid bpid;
    std::vector<PeerEntry> peers;
  };
  struct ResolveOutcome {
    PeerState state = PeerState::kUnknown;
    IpAddress ip = kInvalidIp;
  };
  /// One rejoin result per queried peer, in query order.
  struct RejoinOutcome {
    std::vector<ResolveOutcome> peers;
  };

  using RegisterCallback = std::function<void(Result<RegisterOutcome>)>;
  using StatusCallback = std::function<void(Status)>;
  using ResolveCallback = std::function<void(Result<ResolveOutcome>)>;
  using RejoinCallback = std::function<void(Result<RejoinOutcome>)>;

  /// `dispatcher` must be this node's dispatcher (on the same transport).
  /// `ips` is used to dial LIGLO servers (their ids are fixed node ids)
  /// and answered pings.
  LigloClient(net::Transport* transport, net::Dispatcher* dispatcher,
              IpDirectory* ips, LigloClientOptions options = {});

  LigloClient(const LigloClient&) = delete;
  LigloClient& operator=(const LigloClient&) = delete;

  /// Registers with the LIGLO server at node `liglo_server`, announcing
  /// `my_ip`. On success the client remembers its BPID and home server.
  void Register(NodeId liglo_server, IpAddress my_ip,
                RegisterCallback callback);

  /// Tries each server in order until one accepts (paper §3.4: a full
  /// LIGLO rejects new registrations and "the node has to seek another
  /// LIGLO"). Fails with ResourceExhausted when every server rejects, or
  /// with the last error when all are unreachable.
  void RegisterWithFallback(const std::vector<NodeId>& servers,
                            IpAddress my_ip, RegisterCallback callback);

  /// Reports the current address (and online state) to the home LIGLO.
  void UpdateAddress(IpAddress my_ip, bool online, StatusCallback callback);

  /// Resolves a peer's current address via the peer's home LIGLO
  /// (identified by bpid.liglo_id, a fixed address).
  void Resolve(const Bpid& peer, ResolveCallback callback);

  using PeersCallback =
      std::function<void(Result<std::vector<PeerEntry>>)>;

  /// Asks the home LIGLO for a fresh sample of online members — used to
  /// replace departed or refusing peers. Requires prior registration.
  void DiscoverPeers(PeersCallback callback);

  /// The full rejoin protocol of §2: push our new IP to our home LIGLO,
  /// then resolve each peer in `peers` via its own home LIGLO.
  void Rejoin(IpAddress my_ip, const std::vector<Bpid>& peers,
              RejoinCallback callback);

  /// Our assigned BPID (invalid before successful registration).
  const Bpid& bpid() const { return bpid_; }
  bool registered() const { return bpid_.IsValid(); }

  /// Timeout windows that expired (each failed attempt counts once).
  uint64_t timeouts() const { return timeouts_; }
  /// Resends performed after a timeout.
  uint64_t retries() const { return retries_; }
  /// Replies that arrived after their request had already timed out (or
  /// been answered by an earlier attempt); ignored quietly.
  uint64_t late_replies() const { return late_replies_; }

 private:
  enum class PendingKind { kRegister, kUpdate, kResolve, kPeers };
  struct Pending {
    PendingKind kind;
    RegisterCallback on_register;
    StatusCallback on_status;
    ResolveCallback on_resolve;
    PeersCallback on_peers;
    /// Request wire state kept for resends.
    NodeId server = kInvalidNode;
    uint32_t msg_type = 0;
    Bytes payload;
    int attempt = 0;
  };

  void OnRegisterResp(const net::Message& msg);
  void OnUpdateResp(const net::Message& msg);
  void OnResolveResp(const net::Message& msg);
  void OnPeersResp(const net::Message& msg);
  void OnPing(const net::Message& msg);

  /// Records the pending request and fires its first attempt.
  void StartRequest(uint64_t id, Pending pending);
  /// Puts the request's current attempt on the wire and arms its timeout.
  void SendAttempt(uint64_t id);
  /// Counts a reply whose request already timed out or was answered.
  void NoteLateReply() {
    ++late_replies_;
    late_replies_c_->Increment();
  }
  void ArmTimeout(uint64_t id);
  Pending TakePending(uint64_t id, bool* found);
  /// Whether a timed-out request of this kind is resent.
  static bool Retryable(PendingKind kind) {
    return kind != PendingKind::kUpdate;
  }

  net::Transport* transport_;
  NodeId node_;
  IpDirectory* ips_;
  LigloClientOptions options_;
  Rng jitter_rng_;

  Bpid bpid_;
  NodeId home_server_ = kInvalidNode;
  IpAddress current_ip_ = kInvalidIp;

  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Pending> pending_;
  uint64_t timeouts_ = 0;
  uint64_t retries_ = 0;
  uint64_t late_replies_ = 0;

  metrics::Counter* timeouts_c_ = metrics::Counter::Noop();
  metrics::Counter* retries_c_ = metrics::Counter::Noop();
  metrics::Counter* late_replies_c_ = metrics::Counter::Noop();
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_LIGLO_CLIENT_H_
