#ifndef BESTPEER_LIGLO_LIGLO_CLIENT_H_
#define BESTPEER_LIGLO_LIGLO_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "liglo/bpid.h"
#include "liglo/ip_directory.h"
#include "liglo/liglo_protocol.h"
#include "sim/dispatcher.h"
#include "sim/network.h"
#include "util/sim_time.h"

namespace bestpeer::liglo {

/// Client-side knobs.
struct LigloClientOptions {
  /// Requests with no response within this window fail as Unavailable
  /// (covers LIGLO-server failure: peers keep working, paper §3.4).
  SimTime request_timeout = Seconds(2);
};

/// Node-side LIGLO stub: registration, address updates, BPID resolution,
/// and the rejoin protocol of §2. Also answers the server's liveness
/// pings. All calls are asynchronous; callbacks fire from the simulator.
class LigloClient {
 public:
  struct RegisterOutcome {
    Bpid bpid;
    std::vector<PeerEntry> peers;
  };
  struct ResolveOutcome {
    PeerState state = PeerState::kUnknown;
    IpAddress ip = kInvalidIp;
  };
  /// One rejoin result per queried peer, in query order.
  struct RejoinOutcome {
    std::vector<ResolveOutcome> peers;
  };

  using RegisterCallback = std::function<void(Result<RegisterOutcome>)>;
  using StatusCallback = std::function<void(Status)>;
  using ResolveCallback = std::function<void(Result<ResolveOutcome>)>;
  using RejoinCallback = std::function<void(Result<RejoinOutcome>)>;

  /// `dispatcher` must be this node's dispatcher. `ips` is used to dial
  /// LIGLO servers (their ids are fixed node ids) and answered pings.
  LigloClient(sim::SimNetwork* network, sim::Dispatcher* dispatcher,
              sim::NodeId node, IpDirectory* ips,
              LigloClientOptions options = {});

  LigloClient(const LigloClient&) = delete;
  LigloClient& operator=(const LigloClient&) = delete;

  /// Registers with the LIGLO server at node `liglo_server`, announcing
  /// `my_ip`. On success the client remembers its BPID and home server.
  void Register(sim::NodeId liglo_server, IpAddress my_ip,
                RegisterCallback callback);

  /// Tries each server in order until one accepts (paper §3.4: a full
  /// LIGLO rejects new registrations and "the node has to seek another
  /// LIGLO"). Fails with ResourceExhausted when every server rejects, or
  /// with the last error when all are unreachable.
  void RegisterWithFallback(const std::vector<sim::NodeId>& servers,
                            IpAddress my_ip, RegisterCallback callback);

  /// Reports the current address (and online state) to the home LIGLO.
  void UpdateAddress(IpAddress my_ip, bool online, StatusCallback callback);

  /// Resolves a peer's current address via the peer's home LIGLO
  /// (identified by bpid.liglo_id, a fixed address).
  void Resolve(const Bpid& peer, ResolveCallback callback);

  using PeersCallback =
      std::function<void(Result<std::vector<PeerEntry>>)>;

  /// Asks the home LIGLO for a fresh sample of online members — used to
  /// replace departed or refusing peers. Requires prior registration.
  void DiscoverPeers(PeersCallback callback);

  /// The full rejoin protocol of §2: push our new IP to our home LIGLO,
  /// then resolve each peer in `peers` via its own home LIGLO.
  void Rejoin(IpAddress my_ip, const std::vector<Bpid>& peers,
              RejoinCallback callback);

  /// Our assigned BPID (invalid before successful registration).
  const Bpid& bpid() const { return bpid_; }
  bool registered() const { return bpid_.IsValid(); }

  uint64_t timeouts() const { return timeouts_; }

 private:
  enum class PendingKind { kRegister, kUpdate, kResolve, kPeers };
  struct Pending {
    PendingKind kind;
    RegisterCallback on_register;
    StatusCallback on_status;
    ResolveCallback on_resolve;
    PeersCallback on_peers;
  };

  void OnRegisterResp(const sim::SimMessage& msg);
  void OnUpdateResp(const sim::SimMessage& msg);
  void OnResolveResp(const sim::SimMessage& msg);
  void OnPeersResp(const sim::SimMessage& msg);
  void OnPing(const sim::SimMessage& msg);

  /// Sends `payload` to the node currently holding the server's address;
  /// arms the timeout for request `id`.
  Status SendToServer(sim::NodeId server, uint32_t type, Bytes payload,
                      uint64_t id);
  void ArmTimeout(uint64_t id);
  Pending TakePending(uint64_t id, bool* found);

  sim::SimNetwork* network_;
  sim::NodeId node_;
  IpDirectory* ips_;
  LigloClientOptions options_;

  Bpid bpid_;
  sim::NodeId home_server_ = sim::kInvalidNode;
  IpAddress current_ip_ = kInvalidIp;

  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Pending> pending_;
  uint64_t timeouts_ = 0;
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_LIGLO_CLIENT_H_
