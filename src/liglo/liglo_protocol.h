#ifndef BESTPEER_LIGLO_LIGLO_PROTOCOL_H_
#define BESTPEER_LIGLO_LIGLO_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "liglo/bpid.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::liglo {

/// Wire message types of the LIGLO protocol.
constexpr uint32_t kLigloRegisterReq = 0x4C490001;
constexpr uint32_t kLigloRegisterResp = 0x4C490002;
constexpr uint32_t kLigloUpdateReq = 0x4C490003;
constexpr uint32_t kLigloUpdateResp = 0x4C490004;
constexpr uint32_t kLigloResolveReq = 0x4C490005;
constexpr uint32_t kLigloResolveResp = 0x4C490006;
constexpr uint32_t kLigloPing = 0x4C490007;
constexpr uint32_t kLigloPong = 0x4C490008;
constexpr uint32_t kLigloPeersReq = 0x4C490009;
constexpr uint32_t kLigloPeersResp = 0x4C49000A;

/// A (BPID, current IP) pair as returned in registration responses —
/// the initial direct peers handed to a fresh member (paper §2).
struct PeerEntry {
  Bpid bpid;
  IpAddress ip = kInvalidIp;
};

/// Registration request: a new node asks a LIGLO server for a BPID.
struct RegisterRequest {
  uint64_t request_id = 0;
  IpAddress ip = kInvalidIp;

  Bytes Encode() const;
  static Result<RegisterRequest> Decode(const Bytes& data);
};

/// Registration response. `accepted` is false when the server is at
/// capacity (the node must try another LIGLO, paper §3.4).
struct RegisterResponse {
  uint64_t request_id = 0;
  bool accepted = false;
  Bpid bpid;
  std::vector<PeerEntry> peers;

  Bytes Encode() const;
  static Result<RegisterResponse> Decode(const Bytes& data);
};

/// Address update: a member reports its current IP (and online state)
/// when (re)joining or gracefully leaving.
struct UpdateRequest {
  uint64_t request_id = 0;
  Bpid bpid;
  IpAddress ip = kInvalidIp;
  bool online = true;

  Bytes Encode() const;
  static Result<UpdateRequest> Decode(const Bytes& data);
};

struct UpdateResponse {
  uint64_t request_id = 0;
  bool ok = false;

  Bytes Encode() const;
  static Result<UpdateResponse> Decode(const Bytes& data);
};

/// BPID resolution request, sent to the *peer's* home LIGLO.
struct ResolveRequest {
  uint64_t request_id = 0;
  Bpid bpid;

  Bytes Encode() const;
  static Result<ResolveRequest> Decode(const Bytes& data);
};

/// Liveness/address state of a resolved peer.
enum class PeerState : uint8_t { kOnline = 0, kOffline = 1, kUnknown = 2 };

struct ResolveResponse {
  uint64_t request_id = 0;
  PeerState state = PeerState::kUnknown;
  IpAddress ip = kInvalidIp;

  Bytes Encode() const;
  static Result<ResolveResponse> Decode(const Bytes& data);
};

/// Peer-discovery request: an already registered member asks its LIGLO
/// for fresh peers (used to replace departed/refusing peers, §2: "it can
/// simply replace those peers by new peers that it encounters").
struct PeersRequest {
  uint64_t request_id = 0;
  Bpid requester;

  Bytes Encode() const;
  static Result<PeersRequest> Decode(const Bytes& data);
};

struct PeersResponse {
  uint64_t request_id = 0;
  std::vector<PeerEntry> peers;

  Bytes Encode() const;
  static Result<PeersResponse> Decode(const Bytes& data);
};

/// Liveness probe used by the server's periodic validity sweep.
struct PingMessage {
  uint64_t nonce = 0;

  Bytes Encode() const;
  static Result<PingMessage> Decode(const Bytes& data);
};

struct PongMessage {
  uint64_t nonce = 0;
  Bpid bpid;
  IpAddress ip = kInvalidIp;

  Bytes Encode() const;
  static Result<PongMessage> Decode(const Bytes& data);
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_LIGLO_PROTOCOL_H_
