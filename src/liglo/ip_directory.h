#ifndef BESTPEER_LIGLO_IP_DIRECTORY_H_
#define BESTPEER_LIGLO_IP_DIRECTORY_H_

#include <map>

#include "liglo/bpid.h"
#include "util/ids.h"
#include "util/result.h"

namespace bestpeer::liglo {

/// The LAN's address plane: maps the currently assigned IpAddress of each
/// machine to its physical NodeId so protocol layers can "dial an
/// IP". The experiment harness reassigns addresses between sessions to
/// simulate the temporary-address churn the paper targets.
class IpDirectory {
 public:
  /// Assigns `ip` to `node`, releasing the node's previous address.
  /// Fails with AlreadyExists if the ip belongs to another node.
  Status Assign(IpAddress ip, NodeId node);

  /// Releases whatever address the node holds.
  void Release(NodeId node);

  /// Physical node currently holding `ip`.
  Result<NodeId> Resolve(IpAddress ip) const;

  /// Current address of `node` (kInvalidIp if none).
  IpAddress AddressOf(NodeId node) const;

  /// Allocates a fresh unused address and assigns it to `node`.
  IpAddress AssignFresh(NodeId node);

 private:
  std::map<IpAddress, NodeId> by_ip_;
  std::map<NodeId, IpAddress> by_node_;
  IpAddress next_ip_ = 0x0A000001;  // 10.0.0.1
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_IP_DIRECTORY_H_
