#ifndef BESTPEER_LIGLO_LIGLO_SERVER_H_
#define BESTPEER_LIGLO_LIGLO_SERVER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "liglo/bpid.h"
#include "liglo/ip_directory.h"
#include "liglo/liglo_protocol.h"
#include "net/dispatcher.h"
#include "net/transport.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace bestpeer::liglo {

/// LIGLO server knobs.
struct LigloServerOptions {
  /// Maximum members; 0 = unlimited. A full server rejects registrations
  /// (the node "has to seek another LIGLO", paper §3.4).
  size_t capacity = 0;
  /// How many (BPID, IP) peer entries a registration response carries.
  size_t initial_peer_count = 4;
  /// Seed for sampling which online members are handed out as starter
  /// peers (a random sample, so early members don't become mega-hubs).
  uint64_t sample_seed = 1;
  /// CPU charged per handled request.
  SimTime handling_cost = Micros(300);
  /// Interval of the periodic address-validity sweep; 0 disables it.
  SimTime sweep_interval = 0;
  /// How long the sweep waits for a pong before marking a member offline.
  SimTime ping_timeout = Millis(50);
};

/// A Location-Independent Global Names Lookup server (paper §3.4): issues
/// BPIDs, tracks members' current IPs and online state, answers BPID
/// resolution queries, and periodically validates member addresses with
/// pings. Any number of LIGLO servers can coexist; each only names its
/// own members (BPIDs embed the server's fixed address).
class LigloServer {
 public:
  /// Runs the server on `transport`'s node (which has a fixed, well-known
  /// address: its NodeId doubles as its LIGLO id). `dispatcher` must be
  /// the node's dispatcher; `ips` is the LAN address plane.
  LigloServer(net::Transport* transport, net::Dispatcher* dispatcher,
              IpDirectory* ips, LigloServerOptions options);

  LigloServer(const LigloServer&) = delete;
  LigloServer& operator=(const LigloServer&) = delete;

  /// Starts the periodic validity sweep (no-op if interval is 0).
  /// NOTE: while sweeping, the simulator never goes idle; drive it with
  /// RunUntil(deadline) and call StopSweep() when done.
  void StartSweep();

  /// Stops the periodic sweep (pending timers fire once more, harmlessly).
  void StopSweep() { sweeping_ = false; }

  /// The server's LIGLO id (== its fixed node id).
  uint32_t liglo_id() const { return node_; }

  /// Current member count.
  size_t member_count() const { return members_.size(); }

  /// Members currently believed online.
  size_t online_count() const;

  /// Lookup of a member's recorded state (for tests).
  Result<PeerState> MemberState(const Bpid& bpid) const;
  Result<IpAddress> MemberIp(const Bpid& bpid) const;

  uint64_t registrations() const { return registrations_; }
  uint64_t rejections() const { return rejections_; }
  uint64_t resolves_served() const { return resolves_served_; }

 private:
  struct Member {
    IpAddress ip = kInvalidIp;
    bool online = false;
    SimTime last_seen = 0;
    uint64_t pending_ping_nonce = 0;
  };

  void OnRegister(const net::Message& msg);
  void OnUpdate(const net::Message& msg);
  void OnResolve(const net::Message& msg);
  void OnPeers(const net::Message& msg);
  void OnPong(const net::Message& msg);

  /// Random sample of up to `count` online members, excluding `exclude`.
  std::vector<PeerEntry> SampleOnlineMembers(size_t count,
                                             uint32_t exclude);
  void DoSweep();

  /// Replies after charging the handling cost.
  void Reply(NodeId dst, uint32_t type, Bytes payload);

  net::Transport* transport_;
  NodeId node_;
  IpDirectory* ips_;
  LigloServerOptions options_;

  std::map<uint32_t, Member> members_;  // keyed by BPID node_id
  Rng sample_rng_{1};
  uint32_t next_member_id_ = 1;
  uint64_t next_nonce_ = 1;
  uint64_t registrations_ = 0;
  uint64_t rejections_ = 0;
  uint64_t resolves_served_ = 0;
  bool sweeping_ = false;
};

}  // namespace bestpeer::liglo

#endif  // BESTPEER_LIGLO_LIGLO_SERVER_H_
