#include "liglo/bpid.h"

#include <cstdlib>

#include "util/strings.h"

namespace bestpeer::liglo {

std::string Bpid::ToString() const {
  return std::to_string(liglo_id) + "/" + std::to_string(node_id);
}

Result<Bpid> Bpid::Parse(std::string_view text) {
  auto parts = Split(text, '/');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument("malformed BPID: " + std::string(text));
  }
  char* end = nullptr;
  unsigned long liglo = std::strtoul(parts[0].c_str(), &end, 10);
  if (*end != '\0') {
    return Status::InvalidArgument("malformed BPID: " + std::string(text));
  }
  unsigned long node = std::strtoul(parts[1].c_str(), &end, 10);
  if (*end != '\0') {
    return Status::InvalidArgument("malformed BPID: " + std::string(text));
  }
  Bpid bpid;
  bpid.liglo_id = static_cast<uint32_t>(liglo);
  bpid.node_id = static_cast<uint32_t>(node);
  return bpid;
}

void Bpid::EncodeTo(BinaryWriter& writer) const {
  writer.WriteU32(liglo_id);
  writer.WriteU32(node_id);
}

Result<Bpid> Bpid::DecodeFrom(BinaryReader& reader) {
  Bpid bpid;
  BP_ASSIGN_OR_RETURN(bpid.liglo_id, reader.ReadU32());
  BP_ASSIGN_OR_RETURN(bpid.node_id, reader.ReadU32());
  return bpid;
}

}  // namespace bestpeer::liglo
