#include "liglo/ip_directory.h"

namespace bestpeer::liglo {

Status IpDirectory::Assign(IpAddress ip, NodeId node) {
  if (ip == kInvalidIp) {
    return Status::InvalidArgument("cannot assign the invalid address");
  }
  auto it = by_ip_.find(ip);
  if (it != by_ip_.end() && it->second != node) {
    return Status::AlreadyExists("ip already assigned to node " +
                                 std::to_string(it->second));
  }
  Release(node);
  by_ip_[ip] = node;
  by_node_[node] = ip;
  return Status::OK();
}

void IpDirectory::Release(NodeId node) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return;
  by_ip_.erase(it->second);
  by_node_.erase(it);
}

Result<NodeId> IpDirectory::Resolve(IpAddress ip) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) {
    return Status::NotFound("no node holds ip " + std::to_string(ip));
  }
  return it->second;
}

IpAddress IpDirectory::AddressOf(NodeId node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? kInvalidIp : it->second;
}

IpAddress IpDirectory::AssignFresh(NodeId node) {
  IpAddress ip = next_ip_++;
  Assign(ip, node).ok();
  return ip;
}

}  // namespace bestpeer::liglo
