#include "liglo/liglo_protocol.h"

namespace bestpeer::liglo {

Bytes RegisterRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteU32(ip);
  return w.Take();
}

Result<RegisterRequest> RegisterRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  RegisterRequest m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.ip, r.ReadU32());
  return m;
}

Bytes RegisterResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteU8(accepted ? 1 : 0);
  bpid.EncodeTo(w);
  w.WriteVarint(peers.size());
  for (const auto& peer : peers) {
    peer.bpid.EncodeTo(w);
    w.WriteU32(peer.ip);
  }
  return w.Take();
}

Result<RegisterResponse> RegisterResponse::Decode(const Bytes& data) {
  BinaryReader r(data);
  RegisterResponse m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint8_t accepted, r.ReadU8());
  m.accepted = accepted != 0;
  BP_ASSIGN_OR_RETURN(m.bpid, Bpid::DecodeFrom(r));
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  m.peers.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PeerEntry entry;
    BP_ASSIGN_OR_RETURN(entry.bpid, Bpid::DecodeFrom(r));
    BP_ASSIGN_OR_RETURN(entry.ip, r.ReadU32());
    m.peers.push_back(entry);
  }
  return m;
}

Bytes UpdateRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  bpid.EncodeTo(w);
  w.WriteU32(ip);
  w.WriteU8(online ? 1 : 0);
  return w.Take();
}

Result<UpdateRequest> UpdateRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  UpdateRequest m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.bpid, Bpid::DecodeFrom(r));
  BP_ASSIGN_OR_RETURN(m.ip, r.ReadU32());
  BP_ASSIGN_OR_RETURN(uint8_t online, r.ReadU8());
  m.online = online != 0;
  return m;
}

Bytes UpdateResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteU8(ok ? 1 : 0);
  return w.Take();
}

Result<UpdateResponse> UpdateResponse::Decode(const Bytes& data) {
  BinaryReader r(data);
  UpdateResponse m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint8_t ok, r.ReadU8());
  m.ok = ok != 0;
  return m;
}

Bytes ResolveRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  bpid.EncodeTo(w);
  return w.Take();
}

Result<ResolveRequest> ResolveRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  ResolveRequest m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.bpid, Bpid::DecodeFrom(r));
  return m;
}

Bytes ResolveResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteU8(static_cast<uint8_t>(state));
  w.WriteU32(ip);
  return w.Take();
}

Result<ResolveResponse> ResolveResponse::Decode(const Bytes& data) {
  BinaryReader r(data);
  ResolveResponse m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint8_t state, r.ReadU8());
  if (state > 2) return Status::Corruption("bad peer state");
  m.state = static_cast<PeerState>(state);
  BP_ASSIGN_OR_RETURN(m.ip, r.ReadU32());
  return m;
}

Bytes PeersRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  requester.EncodeTo(w);
  return w.Take();
}

Result<PeersRequest> PeersRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  PeersRequest m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.requester, Bpid::DecodeFrom(r));
  return m;
}

Bytes PeersResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteVarint(peers.size());
  for (const auto& peer : peers) {
    peer.bpid.EncodeTo(w);
    w.WriteU32(peer.ip);
  }
  return w.Take();
}

Result<PeersResponse> PeersResponse::Decode(const Bytes& data) {
  BinaryReader r(data);
  PeersResponse m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  m.peers.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PeerEntry entry;
    BP_ASSIGN_OR_RETURN(entry.bpid, Bpid::DecodeFrom(r));
    BP_ASSIGN_OR_RETURN(entry.ip, r.ReadU32());
    m.peers.push_back(entry);
  }
  return m;
}

Bytes PingMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(nonce);
  return w.Take();
}

Result<PingMessage> PingMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  PingMessage m;
  BP_ASSIGN_OR_RETURN(m.nonce, r.ReadU64());
  return m;
}

Bytes PongMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(nonce);
  bpid.EncodeTo(w);
  w.WriteU32(ip);
  return w.Take();
}

Result<PongMessage> PongMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  PongMessage m;
  BP_ASSIGN_OR_RETURN(m.nonce, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.bpid, Bpid::DecodeFrom(r));
  BP_ASSIGN_OR_RETURN(m.ip, r.ReadU32());
  return m;
}

}  // namespace bestpeer::liglo
