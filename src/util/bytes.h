#ifndef BESTPEER_UTIL_BYTES_H_
#define BESTPEER_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace bestpeer {

/// A growable byte buffer used for message and page serialization.
using Bytes = std::vector<uint8_t>;

/// Serializes integers (little-endian / varint), strings and blobs into a
/// Bytes buffer. All wire formats in BestPeer (agent messages, Gnutella
/// descriptors, LIGLO requests, StorM pages) are produced with this writer
/// and consumed with BinaryReader, so encode/decode stay symmetric.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Appends a single byte.
  void WriteU8(uint8_t v) { buf_.push_back(v); }

  /// Appends fixed-width little-endian integers.
  void WriteU16(uint16_t v) { AppendLe(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  /// Appends an unsigned LEB128 varint (1-10 bytes).
  void WriteVarint(uint64_t v);

  /// Appends a length-prefixed (varint) string.
  void WriteString(std::string_view s);

  /// Appends a length-prefixed (varint) blob.
  void WriteBytes(const Bytes& b);

  /// Appends raw bytes with no length prefix.
  void WriteRaw(const void* data, size_t len);

  /// The accumulated buffer.
  const Bytes& buffer() const { return buf_; }

  /// Moves the accumulated buffer out of the writer.
  Bytes Take() { return std::move(buf_); }

  /// Number of bytes written so far.
  size_t size() const { return buf_.size(); }

 private:
  void AppendLe(const void* v, size_t n);

  Bytes buf_;
};

/// Reads values written by BinaryWriter. All methods return an error Status
/// (never crash) on truncated or malformed input, so wire data from "remote"
/// peers can be parsed defensively.
class BinaryReader {
 public:
  /// The reader does not own the data; it must outlive the reader.
  explicit BinaryReader(const Bytes& data) : data_(data.data()), len_(data.size()) {}
  BinaryReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<uint64_t> ReadVarint();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();

  /// Reads `n` raw bytes with no length prefix.
  Result<Bytes> ReadRaw(size_t n);

  /// Bytes remaining to be read.
  size_t remaining() const { return len_ - pos_; }

  /// Current read offset.
  size_t position() const { return pos_; }

  /// True iff all input has been consumed.
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Converts a string to a byte vector (UTF-8 bytes, no terminator).
Bytes ToBytes(std::string_view s);

/// Converts a byte vector to a string.
std::string ToString(const Bytes& b);

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_BYTES_H_
