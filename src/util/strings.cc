#include "util/strings.h"

#include <cctype>

namespace bestpeer {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char ch : text) {
    auto uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc)) {
      cur += static_cast<char>(std::tolower(uc));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

bool ContainsKeyword(std::string_view text, std::string_view keyword) {
  if (keyword.empty()) return false;
  const std::string needle = ToLower(keyword);
  // Allocation-free scan: find case-insensitive occurrences and check
  // whole-token boundaries. This is the hot path of every simulated
  // store scan, so it avoids tokenizing the full text.
  auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0;
  };
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + needle.size() <= text.size(); ++i) {
    if (lower(text[i]) != needle[0]) continue;
    size_t j = 1;
    while (j < needle.size() && lower(text[i + j]) == needle[j]) ++j;
    if (j != needle.size()) continue;
    bool left_ok = i == 0 || !is_word(text[i - 1]);
    size_t end = i + needle.size();
    bool right_ok = end == text.size() || !is_word(text[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace bestpeer
