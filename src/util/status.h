#ifndef BESTPEER_UTIL_STATUS_H_
#define BESTPEER_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace bestpeer {

/// Error categories used across the BestPeer libraries.
///
/// The project is built without exceptions (database-engine convention);
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code, e.g. "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modelled after the Status types
/// used by RocksDB/Arrow. Ok statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// True iff the code matches the named category.
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define BP_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::bestpeer::Status _bp_status = (expr);         \
    if (!_bp_status.ok()) return _bp_status;        \
  } while (false)

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_STATUS_H_
