#ifndef BESTPEER_UTIL_STATS_H_
#define BESTPEER_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bestpeer {

/// THE quantile routine: percentile of an ascending-sorted sample vector
/// with linear interpolation between closest ranks (inclusive method:
/// p=0 -> min, p=100 -> max, p=50 of {1,2} -> 1.5); p clamped to [0,100].
/// Returns 0 for an empty vector. Every percentile the repo reports —
/// Summary::Percentile (BENCH_*.json rows, critical-path p50/p99),
/// bench_micro_net RTT percentiles — goes through this one function, so
/// the numbers stay comparable across outputs.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// Percentile estimate from a cumulative-bound histogram (the
/// metrics::Histogram / Prometheus bucket shape): `bounds` are ascending
/// upper bounds, `buckets` has bounds.size() + 1 entries (the last is the
/// overflow bucket). Linearly interpolates inside the target bucket,
/// mirroring Prometheus histogram_quantile(); the overflow bucket reads as
/// its lower bound. Returns 0 for an empty histogram.
double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double p);

/// Online accumulator for scalar samples: count/mean/min/max/stddev plus
/// exact percentiles (samples are retained). Used by the benchmark harness
/// to average experiment repetitions the way the paper averaged >= 3 runs.
class Summary {
 public:
  /// Adds one sample.
  void Add(double x);

  /// Merges another summary's samples into this one.
  void Merge(const Summary& other);

  size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation; 0 for fewer than 2 samples.
  double stddev() const;
  /// Percentile with linear interpolation between closest ranks
  /// (inclusive method: p=0 -> min, p=100 -> max); p clamped to [0,100].
  /// Returns 0 for an empty summary.
  double Percentile(double p) const;

  /// "mean=.. min=.. max=.. n=.." one-liner for logs.
  std::string ToString() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0;
};

/// Fixed-bucket histogram over [0, limit) with uniform bucket width.
/// Used for response-time distributions (Fig. 6 style curves).
class Histogram {
 public:
  /// `buckets` uniform buckets covering [0, limit); out-of-range samples
  /// land in the final overflow bucket.
  Histogram(double limit, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  /// Inclusive lower bound of bucket i.
  double BucketLow(size_t i) const;
  uint64_t total() const { return total_; }

  /// Cumulative count at or below the upper edge of bucket i.
  uint64_t CumulativeAt(size_t i) const;

 private:
  double limit_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_STATS_H_
