#ifndef BESTPEER_UTIL_METRICS_H_
#define BESTPEER_UTIL_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bestpeer::metrics {

/// Sorted (key, value) pairs qualifying one instrument, e.g.
/// {{"node", "3"}, {"scheme", "BPR"}}. Registries sort labels on lookup,
/// so callers may pass them in any order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count. Incrementing is a single add on a
/// pointer-stable handle — cheap enough for the network send path.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

  /// A shared sink for components constructed without a registry: writes
  /// land in a dummy nobody reads, so hot paths never branch on nullptr.
  static Counter* Noop();

 private:
  uint64_t value_ = 0;
};

/// A value that can go up and down (queue depths, cache occupancy).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

  static Gauge* Noop();

 private:
  double value_ = 0;
};

/// Bucketed distribution with count/sum/min/max. Buckets are cumulative
/// upper bounds; samples above the last bound land in an implicit
/// overflow bucket.
class Histogram {
 public:
  /// Default: exponential bounds 1, 4, 16, ... 4^12 — wide enough for
  /// microsecond latencies from one NIC transfer to a whole experiment.
  Histogram() : Histogram(DefaultBounds()) {}
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// 0 when empty.
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  static Histogram* Noop();
  static std::vector<double> DefaultBounds();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's state at snapshot time.
struct SnapshotEntry {
  std::string name;
  LabelSet labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  /// Counter/gauge value; for histograms, the sum of samples.
  double value = 0;
  /// Histogram sample count (0 for counters/gauges).
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  /// Histogram bucket upper bounds (empty for counters/gauges).
  std::vector<double> bounds;
  /// Per-bucket counts; bounds.size() + 1 entries, the last being the
  /// overflow bucket. Empty when the entry carries no bucket detail
  /// (e.g. merged from a source without buckets).
  std::vector<uint64_t> buckets;

  /// Histogram percentile estimate (bucket interpolation through the
  /// shared HistogramPercentile routine); 0 for non-histograms or
  /// entries without bucket detail.
  double Percentile(double p) const;
};

/// A point-in-time copy of a registry, detached from the live handles.
/// Benches merge snapshots across seeds and serialize them to JSON.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  /// Sums counters and histograms entry-wise (matched by name + labels);
  /// gauges take the other snapshot's value. Unmatched entries append.
  void Merge(const Snapshot& other);

  /// Sum of `value` across every label combination of `name`
  /// (0 when absent).
  double Value(std::string_view name) const;

  /// Sum of histogram counts across label combinations of `name`.
  uint64_t CountOf(std::string_view name) const;

  /// Flat JSON object: counters/gauges as numbers keyed
  /// "name" or "name{k=v,...}", histograms as
  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..}.
  std::string ToJson(int indent = 0) const;

  /// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
  /// metric family, `name{label="value"} v` samples with full label
  /// escaping, histograms as cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count`. Metric/label names are sanitized to the Prometheus
  /// charset (dots become underscores).
  std::string ToPrometheus() const;
};

/// Validates Prometheus text exposition output: every sample belongs to a
/// preceding `# TYPE` family, names match the Prometheus charset, label
/// values are correctly escaped, histogram bucket counts are monotone
/// with a `+Inf` bucket equal to `_count`. Returns InvalidArgument with a
/// line number on the first violation — the CI format-lint gate.
Status LintPrometheusText(std::string_view text);

/// Owns every instrument of one experiment. Lookup (GetCounter etc.) is a
/// map walk and belongs in constructors; the returned handles are
/// pointer-stable for the registry's lifetime and are what hot paths use.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it
  /// on first use. Asking for the same name with a different kind returns
  /// the shared Noop instrument (and the mismatch is dropped).
  Counter* GetCounter(std::string_view name, LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, LabelSet labels = {});
  /// `bounds` applies only on first creation; empty uses the default.
  Histogram* GetHistogram(std::string_view name, LabelSet labels = {},
                          std::vector<double> bounds = {});

  Snapshot TakeSnapshot() const;

  size_t instrument_count() const { return instruments_.size(); }

 private:
  struct Instrument {
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, LabelSet>;

  std::map<Key, Instrument> instruments_;
};

}  // namespace bestpeer::metrics

#endif  // BESTPEER_UTIL_METRICS_H_
