#ifndef BESTPEER_UTIL_RNG_H_
#define BESTPEER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bestpeer {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All randomness in the simulator, workload generators and
/// tests flows through this type so that every experiment is reproducible
/// from a single seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples ranks from a Zipf(s, n) distribution over {0, .., n-1} where
/// rank 0 is the most popular. Used by the workload generator to produce
/// realistically skewed keyword popularity.
class ZipfSampler {
 public:
  /// n: universe size (> 0); s: skew (s = 0 is uniform, larger = more skew).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_RNG_H_
