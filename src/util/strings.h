#ifndef BESTPEER_UTIL_STRINGS_H_
#define BESTPEER_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace bestpeer {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Tokenizes text into lowercase alphanumeric keywords; everything else is
/// a separator. Used by the keyword search path (StorM agent, Gnutella
/// file-name matching).
std::vector<std::string> TokenizeKeywords(std::string_view text);

/// True iff `text` contains `keyword` as one of its tokens
/// (case-insensitive whole-token match).
bool ContainsKeyword(std::string_view text, std::string_view keyword);

/// True iff `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_STRINGS_H_
