#ifndef BESTPEER_UTIL_HASH_H_
#define BESTPEER_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace bestpeer {

/// FNV-1a 64-bit hash over arbitrary bytes. Used for checksums on StorM
/// pages and for hashing keywords into the inverted index.
uint64_t Fnv1a64(const void* data, size_t len);

/// FNV-1a over a string.
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// 64-bit finalizer (MurmurHash3 fmix64); good avalanche for integer keys.
uint64_t Mix64(uint64_t x);

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_HASH_H_
