#ifndef BESTPEER_UTIL_SIM_TIME_H_
#define BESTPEER_UTIL_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace bestpeer {

/// Simulated time, in integer microseconds since simulation start.
/// Integer time keeps the discrete-event simulator exactly deterministic.
using SimTime = int64_t;

/// Unit constructors.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(int64_t s) { return s * 1000000; }

/// Conversions to floating-point units for reporting.
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Formats a time as a short human-readable string ("12.5ms", "3.20s").
std::string FormatSimTime(SimTime t);

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_SIM_TIME_H_
