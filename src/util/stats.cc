#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bestpeer {

void Summary::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
}

void Summary::Merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
}

double Summary::mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;  // Defined: an empty sample set reads 0.
  if (sorted.size() == 1) return sorted[0];
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double p) {
  if (buckets.size() != bounds.size() + 1) return 0;
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target && buckets[i] > 0) {
      // Overflow bucket has no upper bound; read as its lower edge.
      if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
      const double lo = i == 0 ? 0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0 : bounds.back();
}

double Summary::Percentile(double p) const {
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

std::string Summary::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "mean=%.3f min=%.3f max=%.3f sd=%.3f n=%zu",
                mean(), min(), max(), stddev(), count());
  return buf;
}

Histogram::Histogram(double limit, size_t buckets)
    : limit_(limit),
      width_(limit / static_cast<double>(buckets)),
      counts_(buckets + 1, 0) {
  assert(limit > 0 && buckets > 0);
}

void Histogram::Add(double x) {
  size_t idx;
  if (x < 0) {
    idx = 0;
  } else if (x >= limit_) {
    idx = counts_.size() - 1;  // Overflow bucket.
  } else {
    idx = static_cast<size_t>(x / width_);
  }
  counts_[idx]++;
  total_++;
}

double Histogram::BucketLow(size_t i) const {
  return width_ * static_cast<double>(i);
}

uint64_t Histogram::CumulativeAt(size_t i) const {
  uint64_t acc = 0;
  for (size_t j = 0; j <= i && j < counts_.size(); ++j) acc += counts_[j];
  return acc;
}

}  // namespace bestpeer
