#ifndef BESTPEER_UTIL_TRACE_H_
#define BESTPEER_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.h"
#include "util/status.h"

namespace bestpeer::trace {

/// One interval of simulated time attributed to a node: a message on the
/// wire, a CPU task, or a whole query. `flow` carries the query/agent id
/// so cross-node spans of one query can be stitched together.
struct Span {
  std::string name;
  /// Coarse grouping: "net", "cpu", "query".
  std::string cat;
  /// Track the span renders on — the physical node id.
  uint32_t tid = 0;
  /// Start, in virtual microseconds.
  SimTime ts = 0;
  SimTime dur = 0;
  /// Query/agent id tying spans of one logical operation together
  /// (0 = unaffiliated).
  uint64_t flow = 0;
  /// Numeric extras (src, dst, wire bytes, answers, ...).
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// Collects spans against the virtual clock and exports them as Chrome
/// trace_event JSON (loadable in chrome://tracing and Perfetto) or a flat
/// text dump. Recording is unconditional here; the zero-overhead-when-
/// disabled gate is the Simulator's nullable recorder pointer — callers
/// only construct span data after checking `simulator.trace() != nullptr`.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void RecordSpan(Span span) { spans_.push_back(std::move(span)); }

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one complete
  /// ("ph":"X") event per span, ts/dur in microseconds, tid = node.
  std::string ToChromeJson() const;

  /// One line per span: "ts dur node cat name flow args..." — grep-able.
  std::string ToFlatText() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace bestpeer::trace

#endif  // BESTPEER_UTIL_TRACE_H_
