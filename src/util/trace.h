#ifndef BESTPEER_UTIL_TRACE_H_
#define BESTPEER_UTIL_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/metrics.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace bestpeer::trace {

/// One interval of time attributed to a node: a message on the wire, a
/// CPU task, or a whole query. `flow` carries the query/agent id so
/// cross-node (and, over TCP, cross-process) spans of one query can be
/// stitched together. Timestamps are whatever clock the recording
/// transport runs on — virtual microseconds in the simulator, reactor
/// monotonic microseconds over TCP.
struct Span {
  std::string name;
  /// Coarse grouping: "net", "cpu", "query", "node".
  std::string cat;
  /// Track the span renders on — the physical node id.
  uint32_t tid = 0;
  /// Start, in microseconds.
  SimTime ts = 0;
  SimTime dur = 0;
  /// Query/agent id tying spans of one logical operation together
  /// (0 = unaffiliated).
  uint64_t flow = 0;
  /// Numeric extras (src, dst, wire bytes, answers, ...).
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// Knobs for a recorder. The defaults reproduce the original simulator
/// behaviour for any realistic run: everything sampled, a ring large
/// enough that sim benches never wrap.
struct TraceRecorderOptions {
  /// Ring capacity in spans. When full, the oldest span is overwritten
  /// and counted in spans_dropped(). Must be >= 1.
  size_t ring_capacity = 1u << 20;
  /// Head-based sampling: the fraction of flows recorded. The decision
  /// is a pure function of the flow id (Mix64 hash against a threshold),
  /// so every process on a query's path reaches the same verdict without
  /// coordination; the BPF1 sampled flag makes it explicit on the wire
  /// for fleets running mixed rates. 1.0 records everything (and spans
  /// with flow 0, which have no hashable identity).
  double sample_rate = 1.0;
  /// Metrics sink (not owned; may be nullptr): trace.spans_recorded,
  /// trace.spans_dropped, trace.flows_sampled.
  metrics::Registry* metrics = nullptr;
};

/// Collects spans into a bounded ring and exports them as Chrome
/// trace_event JSON (loadable in chrome://tracing and Perfetto) or a flat
/// text dump. RecordSpan itself is unconditional; the zero-overhead-when-
/// disabled gate is the owner's nullable recorder pointer (Simulator,
/// TcpOptions) — callers only construct span data after checking
/// `transport.trace() != nullptr`, and sampling callers additionally gate
/// on Sampled(flow). Not thread-safe: the simulator and the TCP reactor
/// each touch their recorder from exactly one thread.
class TraceRecorder {
 public:
  TraceRecorder() : TraceRecorder(TraceRecorderOptions{}) {}
  explicit TraceRecorder(TraceRecorderOptions options);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void RecordSpan(Span span);

  /// Head-based sampling verdict for `flow`: true when the flow's hash
  /// clears the sample-rate threshold or the flow was force-sampled by a
  /// wire-propagated decision. Remembers every sampled flow (bounded);
  /// `first_sighting`, when non-null, is set to true on the call that
  /// first saw this flow — the hook for the flight-recorder cross-link.
  /// flow 0 has no identity: it is sampled only at rate 1.0.
  bool Sampled(FlowId flow, bool* first_sighting = nullptr);

  /// Marks `flow` sampled regardless of the local rate — the receive
  /// side of the BPF1 sampled flag. Returns true on first sighting.
  bool ForceSample(FlowId flow);

  /// True when the rate samples every flow (the simulator's mode).
  bool sample_all() const { return sample_rate_ >= 1.0; }

  /// Spans currently held, oldest first (copies out of the ring).
  std::vector<Span> Spans() const;

  /// Spans recorded at or after sequence number `since` (sequence =
  /// recorded() at the time the span was added), oldest first. Sets
  /// *next_seq to the sequence to pass next time — the drain cursor the
  /// trace-frame push loop uses to ship each span at most once. Spans
  /// that fell out of the ring before the cursor caught up are simply
  /// absent (they are counted in spans_dropped()).
  std::vector<Span> SpansSince(uint64_t since, uint64_t* next_seq) const;

  /// Visits spans oldest-first without copying.
  template <typename Fn>
  void ForEachSpan(Fn&& fn) const {
    const size_t n = size();
    const size_t start = wrapped() ? next_ : 0;
    for (size_t i = 0; i < n; ++i) {
      fn(spans_[(start + i) % spans_.size()]);
    }
  }

  size_t size() const { return spans_.size(); }
  size_t capacity() const { return capacity_; }
  /// Total spans ever recorded.
  uint64_t recorded() const { return recorded_; }
  /// Spans overwritten by ring overflow.
  uint64_t spans_dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  /// Distinct flows seen sampled (locally decided or force-sampled).
  uint64_t flows_sampled() const { return flows_sampled_; }
  double sample_rate() const { return sample_rate_; }

  /// The sampled flows currently remembered (bounded; newest kept).
  std::vector<FlowId> SampledFlows() const;

  void Clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one complete
  /// ("ph":"X") event per span, ts/dur in microseconds, tid = node.
  std::string ToChromeJson() const;

  /// One line per span: "ts dur node cat name flow args..." — grep-able.
  std::string ToFlatText() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  bool wrapped() const { return recorded_ > capacity_; }
  /// Remembers `flow` in the bounded sampled set; true on insertion.
  bool NoteSampledFlow(FlowId flow);

  size_t capacity_;
  double sample_rate_;
  /// Hash threshold implementing sample_rate_ (flow sampled when
  /// Mix64(flow) <= threshold).
  uint64_t sample_threshold_ = 0;
  std::vector<Span> spans_;  ///< Ring once recorded_ > capacity_.
  size_t next_ = 0;          ///< Ring write cursor.
  uint64_t recorded_ = 0;
  uint64_t flows_sampled_ = 0;

  /// Flows known sampled: hash-positive flows seen plus force-sampled
  /// ones. Bounded FIFO so a long-lived process cannot grow it forever;
  /// eviction only forgets the first-sighting dedup and (for forced
  /// flows) re-asks the hash, which is harmless at matching rates.
  std::unordered_set<FlowId> sampled_set_;
  std::deque<FlowId> sampled_fifo_;

  metrics::Counter* spans_recorded_c_ = metrics::Counter::Noop();
  metrics::Counter* spans_dropped_c_ = metrics::Counter::Noop();
  metrics::Counter* flows_sampled_c_ = metrics::Counter::Noop();
};

}  // namespace bestpeer::trace

#endif  // BESTPEER_UTIL_TRACE_H_
