#include "util/bytes.h"

namespace bestpeer {

void BinaryWriter::AppendLe(const void* v, size_t n) {
  const auto* p = static_cast<const uint8_t*>(v);
  // Host is little-endian on all supported targets; copy bytes directly.
  buf_.insert(buf_.end(), p, p + n);
}

void BinaryWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(const Bytes& b) {
  WriteVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinaryWriter::WriteRaw(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > len_) {
    return Status::OutOfRange("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) +
                              " of " + std::to_string(len_));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  BP_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> BinaryReader::ReadU16() {
  BP_RETURN_IF_ERROR(Need(2));
  uint16_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  BP_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  BP_RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  BP_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<uint64_t> BinaryReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    BP_RETURN_IF_ERROR(Need(1));
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("varint too long");
}

Result<std::string> BinaryReader::ReadString() {
  BP_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  BP_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> BinaryReader::ReadBytes() {
  BP_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  return ReadRaw(n);
}

Result<Bytes> BinaryReader::ReadRaw(size_t n) {
  BP_RETURN_IF_ERROR(Need(n));
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace bestpeer
