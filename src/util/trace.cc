#include "util/trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/hash.h"

namespace bestpeer::trace {

namespace {

/// Bound on the remembered-sampled-flow set; far above any realistic
/// number of concurrently live queries.
constexpr size_t kMaxRememberedFlows = 8192;

/// Escapes the handful of characters that can appear in span names.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : capacity_(options.ring_capacity == 0 ? 1 : options.ring_capacity),
      sample_rate_(options.sample_rate) {
  if (sample_rate_ < 0) sample_rate_ = 0;
  if (sample_rate_ >= 1.0) {
    sample_rate_ = 1.0;
    sample_threshold_ = UINT64_MAX;
  } else {
    // The largest exactly-representable scale keeps the threshold a pure
    // function of the rate on every platform.
    sample_threshold_ = static_cast<uint64_t>(
        std::ldexp(sample_rate_, 64 - 11) ) << 11;
  }
  if (options.metrics != nullptr) {
    spans_recorded_c_ = options.metrics->GetCounter("trace.spans_recorded");
    spans_dropped_c_ = options.metrics->GetCounter("trace.spans_dropped");
    flows_sampled_c_ = options.metrics->GetCounter("trace.flows_sampled");
  }
}

void TraceRecorder::RecordSpan(Span span) {
  spans_recorded_c_->Increment();
  if (spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
    next_ = spans_.size() % capacity_;
  } else {
    spans_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
    spans_dropped_c_->Increment();
  }
  ++recorded_;
}

bool TraceRecorder::NoteSampledFlow(FlowId flow) {
  if (!sampled_set_.insert(flow).second) return false;
  sampled_fifo_.push_back(flow);
  if (sampled_fifo_.size() > kMaxRememberedFlows) {
    sampled_set_.erase(sampled_fifo_.front());
    sampled_fifo_.pop_front();
  }
  ++flows_sampled_;
  flows_sampled_c_->Increment();
  return true;
}

bool TraceRecorder::Sampled(FlowId flow, bool* first_sighting) {
  if (first_sighting != nullptr) *first_sighting = false;
  if (flow == 0) return sample_rate_ >= 1.0;
  bool verdict = sampled_set_.count(flow) != 0;
  if (!verdict && Mix64(flow) <= sample_threshold_) verdict = true;
  if (verdict) {
    const bool first = NoteSampledFlow(flow);
    if (first_sighting != nullptr) *first_sighting = first;
  }
  return verdict;
}

bool TraceRecorder::ForceSample(FlowId flow) {
  if (flow == 0) return false;
  return NoteSampledFlow(flow);
}

std::vector<Span> TraceRecorder::Spans() const {
  std::vector<Span> out;
  out.reserve(size());
  ForEachSpan([&out](const Span& s) { out.push_back(s); });
  return out;
}

std::vector<Span> TraceRecorder::SpansSince(uint64_t since,
                                            uint64_t* next_seq) const {
  // Sequence of the oldest span still in the ring.
  const uint64_t oldest = recorded_ - size();
  const uint64_t from = since < oldest ? oldest : since;
  std::vector<Span> out;
  if (from < recorded_) {
    out.reserve(static_cast<size_t>(recorded_ - from));
    const size_t start = wrapped() ? next_ : 0;
    for (uint64_t seq = from; seq < recorded_; ++seq) {
      const size_t idx =
          (start + static_cast<size_t>(seq - oldest)) % spans_.size();
      out.push_back(spans_[idx]);
    }
  }
  if (next_seq != nullptr) *next_seq = recorded_;
  return out;
}

std::vector<FlowId> TraceRecorder::SampledFlows() const {
  return {sampled_fifo_.begin(), sampled_fifo_.end()};
}

void TraceRecorder::Clear() {
  spans_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string TraceRecorder::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[128];
  bool first = true;
  ForEachSpan([&](const Span& s) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(&out, s.name);
    out += "\", \"cat\": \"";
    AppendEscaped(&out, s.cat);
    out += "\", \"ph\": \"X\", \"pid\": 1";
    std::snprintf(buf, sizeof(buf),
                  ", \"tid\": %u, \"ts\": %" PRId64 ", \"dur\": %" PRId64,
                  s.tid, s.ts, s.dur);
    out += buf;
    out += ", \"args\": {";
    std::snprintf(buf, sizeof(buf), "\"flow\": %" PRIu64, s.flow);
    out += buf;
    for (const auto& [key, value] : s.args) {
      out += ", \"";
      AppendEscaped(&out, key);
      std::snprintf(buf, sizeof(buf), "\": %" PRIu64, value);
      out += buf;
    }
    out += "}}";
  });
  out += "\n]}\n";
  return out;
}

std::string TraceRecorder::ToFlatText() const {
  std::string out;
  char buf[160];
  ForEachSpan([&](const Span& s) {
    std::snprintf(buf, sizeof(buf),
                  "%12" PRId64 " %10" PRId64 " node=%-4u %-6s %-20s flow=%" PRIu64,
                  s.ts, s.dur, s.tid, s.cat.c_str(), s.name.c_str(), s.flow);
    out += buf;
    for (const auto& [key, value] : s.args) {
      std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key.c_str(), value);
      out += buf;
    }
    out += '\n';
  });
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace bestpeer::trace
