#include "util/trace.h"

#include <cinttypes>
#include <cstdio>

namespace bestpeer::trace {

namespace {

/// Escapes the handful of characters that can appear in span names.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[128];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    AppendEscaped(&out, s.name);
    out += "\", \"cat\": \"";
    AppendEscaped(&out, s.cat);
    out += "\", \"ph\": \"X\", \"pid\": 1";
    std::snprintf(buf, sizeof(buf),
                  ", \"tid\": %u, \"ts\": %" PRId64 ", \"dur\": %" PRId64,
                  s.tid, s.ts, s.dur);
    out += buf;
    out += ", \"args\": {";
    std::snprintf(buf, sizeof(buf), "\"flow\": %" PRIu64, s.flow);
    out += buf;
    for (const auto& [key, value] : s.args) {
      out += ", \"";
      AppendEscaped(&out, key);
      std::snprintf(buf, sizeof(buf), "\": %" PRIu64, value);
      out += buf;
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string TraceRecorder::ToFlatText() const {
  std::string out;
  char buf[160];
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf),
                  "%12" PRId64 " %10" PRId64 " node=%-4u %-6s %-20s flow=%" PRIu64,
                  s.ts, s.dur, s.tid, s.cat.c_str(), s.name.c_str(), s.flow);
    out += buf;
    for (const auto& [key, value] : s.args) {
      std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key.c_str(), value);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace bestpeer::trace
