#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bestpeer::metrics {

Counter* Counter::Noop() {
  static Counter sink;
  return &sink;
}

Gauge* Gauge::Noop() {
  static Gauge sink;
  return &sink;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t idx =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

Histogram* Histogram::Noop() {
  static Histogram sink;
  return &sink;
}

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  double b = 1;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

namespace {

LabelSet Normalized(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string EntryKey(const SnapshotEntry& e) {
  std::string key = e.name;
  if (!e.labels.empty()) {
    key += '{';
    for (size_t i = 0; i < e.labels.size(); ++i) {
      if (i > 0) key += ',';
      key += e.labels[i].first;
      key += '=';
      key += e.labels[i].second;
    }
    key += '}';
  }
  return key;
}

void AppendNumber(std::string* out, double v) {
  // JSON has no nan/inf literal; null keeps the document parseable.
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  // Integral values (the common case: counters, byte totals) print
  // without a fraction so the JSON diffs cleanly across runs.
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    *out += buf;
  }
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

Counter* Registry::GetCounter(std::string_view name, LabelSet labels) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kCounter;
    inst.counter = std::make_unique<Counter>();
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kCounter) return Counter::Noop();
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, LabelSet labels) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kGauge) return Gauge::Noop();
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, LabelSet labels,
                                  std::vector<double> bounds) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kHistogram;
    inst.histogram = bounds.empty()
                         ? std::make_unique<Histogram>()
                         : std::make_unique<Histogram>(std::move(bounds));
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kHistogram) return Histogram::Noop();
  return it->second.histogram.get();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    SnapshotEntry entry;
    entry.name = key.first;
    entry.labels = key.second;
    entry.kind = inst.kind;
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        entry.value = static_cast<double>(inst.counter->value());
        break;
      case InstrumentKind::kGauge:
        entry.value = inst.gauge->value();
        break;
      case InstrumentKind::kHistogram:
        entry.value = inst.histogram->sum();
        entry.count = inst.histogram->count();
        entry.min = inst.histogram->min();
        entry.max = inst.histogram->max();
        break;
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& theirs : other.entries) {
    SnapshotEntry* mine = nullptr;
    for (auto& e : entries) {
      if (e.name == theirs.name && e.labels == theirs.labels) {
        mine = &e;
        break;
      }
    }
    if (mine == nullptr) {
      entries.push_back(theirs);
      continue;
    }
    switch (theirs.kind) {
      case InstrumentKind::kCounter:
        mine->value += theirs.value;
        break;
      case InstrumentKind::kGauge:
        mine->value = theirs.value;
        break;
      case InstrumentKind::kHistogram: {
        const bool mine_empty = mine->count == 0;
        mine->value += theirs.value;
        mine->count += theirs.count;
        if (theirs.count > 0) {
          mine->min = mine_empty ? theirs.min : std::min(mine->min, theirs.min);
          mine->max = mine_empty ? theirs.max : std::max(mine->max, theirs.max);
        }
        break;
      }
    }
  }
}

double Snapshot::Value(std::string_view name) const {
  double sum = 0;
  for (const auto& e : entries) {
    if (e.name == name) sum += e.value;
  }
  return sum;
}

uint64_t Snapshot::CountOf(std::string_view name) const {
  uint64_t sum = 0;
  for (const auto& e : entries) {
    if (e.name == name) sum += e.count;
  }
  return sum;
}

std::string Snapshot::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner(static_cast<size_t>(indent) + 2, ' ');
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SnapshotEntry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += inner;
    out += '"';
    AppendEscaped(&out, EntryKey(e));
    out += "\": ";
    if (e.kind == InstrumentKind::kHistogram) {
      out += "{\"count\": ";
      AppendNumber(&out, static_cast<double>(e.count));
      out += ", \"sum\": ";
      AppendNumber(&out, e.value);
      out += ", \"min\": ";
      AppendNumber(&out, e.min);
      out += ", \"max\": ";
      AppendNumber(&out, e.max);
      out += ", \"mean\": ";
      AppendNumber(&out, e.count == 0
                             ? 0
                             : e.value / static_cast<double>(e.count));
      out += "}";
    } else {
      AppendNumber(&out, e.value);
    }
  }
  if (!entries.empty()) {
    out += '\n';
    out += pad;
  }
  out += '}';
  return out;
}

}  // namespace bestpeer::metrics
