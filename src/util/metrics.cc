#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "util/stats.h"

namespace bestpeer::metrics {

Counter* Counter::Noop() {
  static Counter sink;
  return &sink;
}

Gauge* Gauge::Noop() {
  static Gauge sink;
  return &sink;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t idx =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

Histogram* Histogram::Noop() {
  static Histogram sink;
  return &sink;
}

std::vector<double> Histogram::DefaultBounds() {
  std::vector<double> bounds;
  double b = 1;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

namespace {

LabelSet Normalized(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string EntryKey(const SnapshotEntry& e) {
  std::string key = e.name;
  if (!e.labels.empty()) {
    key += '{';
    for (size_t i = 0; i < e.labels.size(); ++i) {
      if (i > 0) key += ',';
      key += e.labels[i].first;
      key += '=';
      key += e.labels[i].second;
    }
    key += '}';
  }
  return key;
}

void AppendNumber(std::string* out, double v) {
  // JSON has no nan/inf literal; null keeps the document parseable.
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  // Integral values (the common case: counters, byte totals) print
  // without a fraction so the JSON diffs cleanly across runs.
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    *out += buf;
  }
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

Counter* Registry::GetCounter(std::string_view name, LabelSet labels) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kCounter;
    inst.counter = std::make_unique<Counter>();
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kCounter) return Counter::Noop();
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, LabelSet labels) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kGauge) return Gauge::Noop();
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, LabelSet labels,
                                  std::vector<double> bounds) {
  Key key{std::string(name), Normalized(std::move(labels))};
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = InstrumentKind::kHistogram;
    inst.histogram = bounds.empty()
                         ? std::make_unique<Histogram>()
                         : std::make_unique<Histogram>(std::move(bounds));
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  if (it->second.kind != InstrumentKind::kHistogram) return Histogram::Noop();
  return it->second.histogram.get();
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    SnapshotEntry entry;
    entry.name = key.first;
    entry.labels = key.second;
    entry.kind = inst.kind;
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        entry.value = static_cast<double>(inst.counter->value());
        break;
      case InstrumentKind::kGauge:
        entry.value = inst.gauge->value();
        break;
      case InstrumentKind::kHistogram:
        entry.value = inst.histogram->sum();
        entry.count = inst.histogram->count();
        entry.min = inst.histogram->min();
        entry.max = inst.histogram->max();
        entry.bounds = inst.histogram->bounds();
        entry.buckets = inst.histogram->buckets();
        break;
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& theirs : other.entries) {
    SnapshotEntry* mine = nullptr;
    for (auto& e : entries) {
      if (e.name == theirs.name && e.labels == theirs.labels) {
        mine = &e;
        break;
      }
    }
    if (mine == nullptr) {
      entries.push_back(theirs);
      continue;
    }
    switch (theirs.kind) {
      case InstrumentKind::kCounter:
        mine->value += theirs.value;
        break;
      case InstrumentKind::kGauge:
        mine->value = theirs.value;
        break;
      case InstrumentKind::kHistogram: {
        const bool mine_empty = mine->count == 0;
        mine->value += theirs.value;
        mine->count += theirs.count;
        if (theirs.count > 0) {
          mine->min = mine_empty ? theirs.min : std::min(mine->min, theirs.min);
          mine->max = mine_empty ? theirs.max : std::max(mine->max, theirs.max);
        }
        if (mine->bounds == theirs.bounds &&
            mine->buckets.size() == theirs.buckets.size()) {
          for (size_t i = 0; i < mine->buckets.size(); ++i) {
            mine->buckets[i] += theirs.buckets[i];
          }
        } else {
          // Incompatible bucket layouts: keep count/sum/min/max (still
          // exact) but drop the bucket detail rather than fabricate one.
          mine->bounds.clear();
          mine->buckets.clear();
        }
        break;
      }
    }
  }
}

double Snapshot::Value(std::string_view name) const {
  double sum = 0;
  for (const auto& e : entries) {
    if (e.name == name) sum += e.value;
  }
  return sum;
}

uint64_t Snapshot::CountOf(std::string_view name) const {
  uint64_t sum = 0;
  for (const auto& e : entries) {
    if (e.name == name) sum += e.count;
  }
  return sum;
}

double SnapshotEntry::Percentile(double p) const {
  if (kind != InstrumentKind::kHistogram || buckets.empty()) return 0;
  return HistogramPercentile(bounds, buckets, p);
}

namespace {

// --- Prometheus text exposition (version 0.0.4) -------------------------

/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; label names drop the
/// colon. Out-of-charset characters (the repo uses dotted names like
/// "net.tx_bytes") become underscores.
std::string SanitizeName(std::string_view name, bool allow_colon) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (c == ':' && allow_colon) || (digit && i > 0)) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

/// Label values escape backslash, double-quote and newline.
void AppendLabelEscaped(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

/// Prometheus sample values: plain decimal, with NaN/+Inf/-Inf spelled
/// out (unlike JSON, the exposition format has literals for them).
void AppendPromNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  *out += buf;
}

/// `{label="value",...}` with `extra` appended last (used for `le`).
void AppendLabels(std::string* out, const LabelSet& labels,
                  const std::string& extra_key = std::string(),
                  const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += SanitizeName(k, /*allow_colon=*/false);
    *out += "=\"";
    AppendLabelEscaped(out, v);
    *out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) *out += ',';
    *out += extra_key;
    *out += "=\"";
    AppendLabelEscaped(out, extra_value);
    *out += '"';
  }
  *out += '}';
}

const char* KindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string Snapshot::ToPrometheus() const {
  std::string out;
  out.reserve(entries.size() * 48);
  // Entries arrive grouped by name (registry snapshots are map-ordered;
  // merged snapshots append in first-seen order). Emit one TYPE line per
  // family at its first entry; repeated families reuse the earlier TYPE.
  std::vector<std::string> typed;
  for (const SnapshotEntry& e : entries) {
    const std::string name = SanitizeName(e.name, /*allow_colon=*/true);
    if (std::find(typed.begin(), typed.end(), name) == typed.end()) {
      typed.push_back(name);
      out += "# TYPE ";
      out += name;
      out += ' ';
      out += KindName(e.kind);
      out += '\n';
    }
    if (e.kind == InstrumentKind::kHistogram) {
      // Cumulative buckets; the +Inf bucket always equals _count, so a
      // bucketless entry (merged across layouts) still exposes validly.
      uint64_t cumulative = 0;
      for (size_t i = 0; i < e.bounds.size() && i < e.buckets.size(); ++i) {
        cumulative += e.buckets[i];
        out += name;
        out += "_bucket";
        std::string le;
        AppendPromNumber(&le, e.bounds[i]);
        AppendLabels(&out, e.labels, "le", le);
        out += ' ';
        AppendPromNumber(&out, static_cast<double>(cumulative));
        out += '\n';
      }
      out += name;
      out += "_bucket";
      AppendLabels(&out, e.labels, "le", "+Inf");
      out += ' ';
      AppendPromNumber(&out, static_cast<double>(e.count));
      out += '\n';
      out += name;
      out += "_sum";
      AppendLabels(&out, e.labels);
      out += ' ';
      AppendPromNumber(&out, e.value);
      out += '\n';
      out += name;
      out += "_count";
      AppendLabels(&out, e.labels);
      out += ' ';
      AppendPromNumber(&out, static_cast<double>(e.count));
      out += '\n';
    } else {
      out += name;
      AppendLabels(&out, e.labels);
      out += ' ';
      AppendPromNumber(&out, e.value);
      out += '\n';
    }
  }
  return out;
}

namespace {

// --- exposition lint ----------------------------------------------------

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

Status LintError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("exposition line " +
                                 std::to_string(line_no) + ": " + what);
}

struct LintSample {
  std::string name;    ///< Full sample name (with _bucket/_sum suffix).
  std::string labels;  ///< Raw label block without the `le` pair.
  double le = 0;       ///< Parsed le bound (bucket samples only).
  bool le_inf = false;
  double value = 0;
};

/// Parses `name{labels} value`; returns false + error message on bad
/// syntax. Splits out the `le` label for bucket monotonicity checks.
bool ParseSample(const std::string& line, LintSample* out,
                 std::string* error) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *error = "invalid metric name '" + out->name + "'";
    return false;
  }
  out->labels.clear();
  out->le_inf = false;
  out->le = 0;
  bool saw_le = false;
  if (i < line.size() && line[i] == '{') {
    ++i;
    bool first = true;
    while (i < line.size() && line[i] != '}') {
      if (!first) {
        if (line[i] != ',') {
          *error = "expected ',' between labels";
          return false;
        }
        ++i;
      }
      size_t eq = line.find('=', i);
      if (eq == std::string::npos) {
        *error = "label without '='";
        return false;
      }
      std::string key = line.substr(i, eq - i);
      if (!ValidMetricName(key) || key.find(':') != std::string::npos) {
        *error = "invalid label name '" + key + "'";
        return false;
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        *error = "label value not quoted";
        return false;
      }
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) {
            *error = "dangling escape in label value";
            return false;
          }
          const char esc = line[i + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') {
            *error = "invalid escape in label value";
            return false;
          }
          value.push_back(esc == 'n' ? '\n' : esc);
          i += 2;
        } else {
          value.push_back(line[i]);
          ++i;
        }
      }
      if (i >= line.size()) {
        *error = "unterminated label value";
        return false;
      }
      ++i;  // Closing quote.
      if (key == "le") {
        saw_le = true;
        if (value == "+Inf") {
          out->le_inf = true;
        } else {
          char* end = nullptr;
          out->le = std::strtod(value.c_str(), &end);
          if (end == value.c_str() || *end != '\0') {
            *error = "unparseable le bound '" + value + "'";
            return false;
          }
        }
      } else {
        if (!out->labels.empty()) out->labels += ',';
        out->labels += key;
        out->labels += '=';
        out->labels += value;
      }
      first = false;
    }
    if (i >= line.size()) {
      *error = "unterminated label block";
      return false;
    }
    ++i;  // '}'.
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "missing space before sample value";
    return false;
  }
  ++i;
  const std::string value_str = line.substr(i);
  if (value_str == "NaN") {
    out->value = std::nan("");
  } else if (value_str == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
  } else if (value_str == "-Inf") {
    out->value = -std::numeric_limits<double>::infinity();
  } else {
    char* end = nullptr;
    out->value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') {
      *error = "unparseable sample value '" + value_str + "'";
      return false;
    }
  }
  (void)saw_le;  // Bucket-without-le is caught by the family pass below.
  return true;
}

}  // namespace

Status LintPrometheusText(std::string_view text) {
  // family name -> declared kind.
  std::map<std::string, std::string> families;
  // histogram family + labels -> last cumulative bucket count and whether
  // +Inf was seen; +Inf count compared against _count at the end.
  struct BucketState {
    double last = -1;
    double last_le = -std::numeric_limits<double>::infinity();
    bool inf_seen = false;
    double inf_count = 0;
    bool count_seen = false;
    double count_value = 0;
  };
  std::map<std::string, BucketState> hist_state;

  size_t line_no = 0;
  size_t pos = 0;
  bool any_sample = false;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string line(nl == std::string_view::npos
                               ? text.substr(pos)
                               : text.substr(pos, nl - pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only TYPE and HELP comments are meaningful; others are ignored.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return LintError(line_no, "malformed TYPE line");
        }
        const std::string fam = rest.substr(0, sp);
        const std::string kind = rest.substr(sp + 1);
        if (!ValidMetricName(fam)) {
          return LintError(line_no, "invalid family name in TYPE line");
        }
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return LintError(line_no, "unknown TYPE kind '" + kind + "'");
        }
        if (families.count(fam) != 0) {
          return LintError(line_no, "duplicate TYPE for family " + fam);
        }
        families[fam] = kind;
      }
      continue;
    }
    LintSample sample;
    std::string error;
    if (!ParseSample(line, &sample, &error)) {
      return LintError(line_no, error);
    }
    any_sample = true;
    // Resolve the family: histogram suffixes map back to the base name.
    std::string family = sample.name;
    std::string suffix;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(s);
      if (family.size() > n &&
          family.compare(family.size() - n, n, s) == 0 &&
          families.count(family.substr(0, family.size() - n)) != 0 &&
          families[family.substr(0, family.size() - n)] == "histogram") {
        suffix = s;
        family = family.substr(0, family.size() - n);
        break;
      }
    }
    auto fam_it = families.find(family);
    if (fam_it == families.end()) {
      return LintError(line_no, "sample '" + sample.name +
                                    "' has no preceding TYPE line");
    }
    if (fam_it->second == "histogram") {
      if (suffix.empty()) {
        return LintError(line_no, "histogram family " + family +
                                      " exposed without suffix");
      }
      BucketState& st = hist_state[family + "\x01" + sample.labels];
      if (suffix == "_bucket") {
        if (sample.le_inf) {
          st.inf_seen = true;
          st.inf_count = sample.value;
          if (sample.value < st.last) {
            return LintError(line_no,
                             "+Inf bucket below preceding bucket count");
          }
        } else {
          if (sample.le <= st.last_le) {
            return LintError(line_no, "bucket le bounds not increasing");
          }
          if (st.last >= 0 && sample.value < st.last) {
            return LintError(line_no,
                             "bucket counts not monotone for " + family);
          }
          st.last_le = sample.le;
          st.last = sample.value;
        }
      } else if (suffix == "_count") {
        st.count_seen = true;
        st.count_value = sample.value;
      }
    }
  }
  if (!any_sample) {
    return Status::InvalidArgument("exposition has no samples");
  }
  for (const auto& [key, st] : hist_state) {
    const std::string family = key.substr(0, key.find('\x01'));
    if (!st.inf_seen) {
      return Status::InvalidArgument("histogram " + family +
                                     " missing +Inf bucket");
    }
    if (st.count_seen && st.inf_count != st.count_value) {
      return Status::InvalidArgument("histogram " + family +
                                     " +Inf bucket != _count");
    }
  }
  return Status::OK();
}

std::string Snapshot::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner(static_cast<size_t>(indent) + 2, ' ');
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SnapshotEntry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += inner;
    out += '"';
    AppendEscaped(&out, EntryKey(e));
    out += "\": ";
    if (e.kind == InstrumentKind::kHistogram) {
      out += "{\"count\": ";
      AppendNumber(&out, static_cast<double>(e.count));
      out += ", \"sum\": ";
      AppendNumber(&out, e.value);
      out += ", \"min\": ";
      AppendNumber(&out, e.min);
      out += ", \"max\": ";
      AppendNumber(&out, e.max);
      out += ", \"mean\": ";
      AppendNumber(&out, e.count == 0
                             ? 0
                             : e.value / static_cast<double>(e.count));
      out += "}";
    } else {
      AppendNumber(&out, e.value);
    }
  }
  if (!entries.empty()) {
    out += '\n';
    out += pad;
  }
  out += '}';
  return out;
}

}  // namespace bestpeer::metrics
