#ifndef BESTPEER_UTIL_LOGGING_H_
#define BESTPEER_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace bestpeer {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/// Global minimum severity; messages below it are dropped. Default kWarn so
/// tests and benchmarks stay quiet unless asked. The initial level honors
/// the BP_LOG_LEVEL environment variable ("debug", "info", "warn",
/// "error"; case-insensitive), so benches and tests can raise verbosity
/// without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug"/"info"/"warn"/"warning"/"error", any
/// case). Returns false and leaves `out` untouched on unknown input.
bool ParseLogLevel(std::string_view name, LogLevel* out);

namespace internal_logging {

/// Stream-style message builder; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the stream when the message is below the active level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define BP_LOG(level)                                                  \
  if (::bestpeer::LogLevel::k##level < ::bestpeer::GetLogLevel()) {    \
  } else                                                               \
    ::bestpeer::internal_logging::LogMessage(                          \
        ::bestpeer::LogLevel::k##level, __FILE__, __LINE__)            \
        .stream()

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_LOGGING_H_
