#include "util/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bestpeer {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("BP_LOG_LEVEL");
  LogLevel level = LogLevel::kWarn;
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr, "[WARN logging] unknown BP_LOG_LEVEL '%s'; using warn\n",
                 env);
  }
  return level;
}

LogLevel g_level = InitialLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace bestpeer
