#ifndef BESTPEER_UTIL_IDS_H_
#define BESTPEER_UTIL_IDS_H_

#include <cstdint>

namespace bestpeer {

/// Logical address of a node. This is the canonical home of the type:
/// protocol headers (agent messages, LIGLO requests, peer lists) name
/// addresses without pulling in any transport, and every backend — the
/// discrete-event simulator as well as the real TCP reactor — maps the
/// same id space onto its own endpoints.
using NodeId = uint32_t;

/// Sentinel for "no node".
constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/// Tag tying the messages, CPU tasks and trace spans of one logical
/// operation (a query, an agent walk) together across nodes. 0 = none.
using FlowId = uint64_t;

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_IDS_H_
