#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bestpeer {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace bestpeer
