#include "util/sim_time.h"

#include <cstdio>

namespace bestpeer {

std::string FormatSimTime(SimTime t) {
  char buf[32];
  if (t < Millis(1)) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  } else if (t < Seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  }
  return buf;
}

}  // namespace bestpeer
