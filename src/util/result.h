#ifndef BESTPEER_UTIL_RESULT_H_
#define BESTPEER_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace bestpeer {

/// A value-or-error type: holds either a T or a non-OK Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs a failed result; `status` must not be OK.
  Result(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// The held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ present.
};

/// Propagates an error Result to the caller; otherwise binds the value.
#define BP_CONCAT_INNER(a, b) a##b
#define BP_CONCAT(a, b) BP_CONCAT_INNER(a, b)
#define BP_ASSIGN_OR_RETURN(lhs, expr) \
  BP_ASSIGN_OR_RETURN_IMPL(BP_CONCAT(_bp_result_, __LINE__), lhs, expr)
#define BP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

}  // namespace bestpeer

#endif  // BESTPEER_UTIL_RESULT_H_
