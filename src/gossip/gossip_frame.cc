#include "gossip/gossip_frame.h"

namespace bestpeer::gossip {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("gossip frame: " + what);
}

}  // namespace

Bytes EncodeGossipFrame(const GossipFrame& frame) {
  BinaryWriter w;
  w.WriteU32(kGossipFrameMagic);
  w.WriteU16(kGossipFrameVersion);
  w.WriteU32(frame.sender);
  w.WriteU64(frame.round);
  w.WriteU8(frame.flags);
  w.WriteVarint(frame.items.size());
  for (const GossipItem& item : frame.items) {
    w.WriteU8(static_cast<uint8_t>(item.kind));
    w.WriteU32(item.origin);
    w.WriteU64(item.subject);
    w.WriteU32(item.holder);
    w.WriteU64(item.version);
    w.WriteU64(item.payload);
  }
  return w.Take();
}

Result<GossipFrame> DecodeGossipFrame(const Bytes& payload) {
  BinaryReader r(payload);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kGossipFrameMagic) return Malformed("bad magic");
  auto version = r.ReadU16();
  if (!version.ok()) return version.status();
  if (version.value() != kGossipFrameVersion) {
    return Malformed("unknown version");
  }
  GossipFrame frame;
  auto sender = r.ReadU32();
  if (!sender.ok()) return sender.status();
  frame.sender = sender.value();
  auto round = r.ReadU64();
  if (!round.ok()) return round.status();
  frame.round = round.value();
  auto flags = r.ReadU8();
  if (!flags.ok()) return flags.status();
  if ((flags.value() & ~GossipFrame::kFlagResponse) != 0) {
    return Malformed("unknown flags");
  }
  frame.flags = flags.value();

  auto item_count = r.ReadVarint();
  if (!item_count.ok()) return item_count.status();
  if (item_count.value() > kGossipFrameMaxItems) {
    return Malformed("item count over limit");
  }
  frame.items.reserve(item_count.value());
  for (uint64_t i = 0; i < item_count.value(); ++i) {
    GossipItem item;
    auto kind = r.ReadU8();
    if (!kind.ok()) return kind.status();
    if (kind.value() < static_cast<uint8_t>(ItemKind::kIndexEpoch) ||
        kind.value() > static_cast<uint8_t>(ItemKind::kLeaseExpire)) {
      return Malformed("unknown item kind");
    }
    item.kind = static_cast<ItemKind>(kind.value());
    auto origin = r.ReadU32();
    if (!origin.ok()) return origin.status();
    item.origin = origin.value();
    auto subject = r.ReadU64();
    if (!subject.ok()) return subject.status();
    item.subject = subject.value();
    auto holder = r.ReadU32();
    if (!holder.ok()) return holder.status();
    item.holder = holder.value();
    auto item_version = r.ReadU64();
    if (!item_version.ok()) return item_version.status();
    item.version = item_version.value();
    auto value = r.ReadU64();
    if (!value.ok()) return value.status();
    item.payload = value.value();
    frame.items.push_back(item);
  }
  if (r.remaining() != 0) return Malformed("trailing bytes");
  return frame;
}

}  // namespace bestpeer::gossip
