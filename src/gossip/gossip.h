#ifndef BESTPEER_GOSSIP_GOSSIP_H_
#define BESTPEER_GOSSIP_GOSSIP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "gossip/gossip_frame.h"
#include "net/transport.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace bestpeer::gossip {

struct GossipOptions {
  /// Peers contacted per round (the epidemic branching factor).
  size_t fanout = 2;
  /// Time between two rounds while rumors are hot.
  SimTime round_interval = Millis(2);
  /// Rounds a new or updated item stays hot (is actively pushed) before
  /// the agent goes quiescent. Redundancy against message loss.
  uint32_t hot_rounds = 3;
  /// Seed for the deterministic peer-selection stream. The agent mixes
  /// in the transport's node id, so one fleet-wide seed still gives
  /// every node an independent stream.
  uint64_t seed = 1;
  /// Metrics sink (not owned; may be null).
  metrics::Registry* metrics = nullptr;
};

/// Rumor-mongering anti-entropy agent: one per node, disseminating
/// versioned facts (StorM IndexEpoch bumps, replica-lease grant/expiry
/// digests) through seeded, fanout-bounded push-pull rounds.
///
/// Round structure: while any item is hot, a deterministic timer fires
/// every `round_interval`; the agent picks `fanout` peers (seeded
/// shuffle) and pushes its hot items to each (rumor frames stay small —
/// cold state never rides along). A receiver applies every item that is
/// newer than its local version (duplicate suppression is the version
/// compare), re-marks freshly applied items hot (the rumor spreads
/// onward), and answers a push — never a reply — with newer versions of
/// the offered items (the pull half, which is what converges a healed
/// partition once someone re-announces). When every item has been pushed
/// `hot_rounds` times the timer is simply not re-armed, so a simulated
/// run drains to idle; the next local announce (or peer change with
/// rumors pending) re-arms it.
///
/// Single-threaded like the rest of the protocol stack: all entry
/// points run on the transport's delivery thread.
class GossipAgent {
 public:
  GossipAgent(net::Transport* transport, GossipOptions options);
  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  /// Supplies the peers the agent may gossip with (the node's direct
  /// peers). Must be set before any announce arrives.
  void SetPeerProvider(std::function<std::vector<NodeId>()> provider);

  /// Fires once for every item newly applied from a peer (not for local
  /// announces). The node hooks cache pre-invalidation here.
  void SetApplyHook(std::function<void(const GossipItem&)> hook);

  // --- local facts ------------------------------------------------------

  /// This node's StorM IndexEpoch moved (monotonic; stale calls are
  /// suppressed like any other duplicate).
  void AnnounceEpoch(uint64_t index_epoch);

  /// This node granted `holder` a replica lease on `object_id` at
  /// `source_epoch`.
  void AnnounceLeaseGrant(uint64_t object_id, NodeId holder,
                          uint64_t source_epoch);

  /// This node's lease on `object_id` (a replica it held) ended —
  /// TTL expiry or revocation at `generation`.
  void AnnounceLeaseExpire(uint64_t object_id, uint64_t generation);

  /// Re-arms the round timer when rumors are pending — call after the
  /// direct-peer set gains members (announces made while isolated stay
  /// hot but cannot schedule rounds).
  void NotifyPeersChanged();

  /// Wire entry point: the node's dispatcher routes kGossipMsgType here.
  void OnMessage(const net::Message& msg);

  // --- introspection ----------------------------------------------------

  /// Last known IndexEpoch of `origin` (0 = unknown). Includes self.
  uint64_t EpochOf(NodeId origin) const;

  /// Every known (origin -> IndexEpoch) pair.
  std::map<NodeId, uint64_t> KnownEpochs() const;

  /// True while a lease grant for (object, holder) is live (granted and
  /// not expired) as far as gossip knows.
  bool LeaseLive(uint64_t object_id, NodeId holder) const;

  size_t known_items() const { return state_.size(); }
  uint64_t rounds() const { return rounds_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t items_applied() const { return items_applied_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t decode_errors() const { return decode_errors_; }
  /// True when no round timer is armed (all rumors cold).
  bool quiescent() const { return !timer_armed_; }

 private:
  /// Version-vector key: (kind, origin, subject, holder).
  using Key = std::tuple<uint8_t, uint32_t, uint64_t, uint32_t>;

  struct Entry {
    uint64_t version = 0;
    uint64_t payload = 0;
    /// Rounds this item will still be pushed in; 0 = cold.
    uint32_t hot = 0;
  };

  static Key KeyOf(const GossipItem& item);
  GossipItem ItemOf(const Key& key, const Entry& entry) const;

  /// Applies `item` if newer; returns true when the state changed.
  /// Freshly applied items are marked hot.
  bool Upsert(const GossipItem& item);

  /// Records a locally originated fact and re-arms the timer.
  void AnnounceLocal(const GossipItem& item);

  bool AnyHot() const;
  void ArmTimer();
  void RunRound();
  void SendFrame(NodeId dst, GossipFrame frame);

  net::Transport* transport_;
  GossipOptions options_;
  NodeId node_;
  Rng rng_;

  std::function<std::vector<NodeId>()> peer_provider_;
  std::function<void(const GossipItem&)> apply_hook_;

  std::map<Key, Entry> state_;
  /// Highest version each peer has provably shown it holds (by sending
  /// it to us) — rumor frames never re-offer those, so saturated items
  /// stop costing wire. Confirmed knowledge only: our own sends can be
  /// lost, so they are never recorded here.
  std::map<NodeId, std::map<Key, uint64_t>> peer_known_;
  /// Monotonic sequence versioning this node's lease facts.
  uint64_t lease_seq_ = 0;
  uint64_t round_ = 0;
  bool timer_armed_ = false;

  uint64_t rounds_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t items_applied_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t decode_errors_ = 0;

  metrics::Counter* rounds_c_ = metrics::Counter::Noop();
  metrics::Counter* frames_sent_c_ = metrics::Counter::Noop();
  metrics::Counter* frames_received_c_ = metrics::Counter::Noop();
  metrics::Counter* items_sent_c_ = metrics::Counter::Noop();
  metrics::Counter* items_applied_c_ = metrics::Counter::Noop();
  metrics::Counter* duplicates_c_ = metrics::Counter::Noop();
  metrics::Counter* decode_errors_c_ = metrics::Counter::Noop();
  metrics::Gauge* known_items_g_ = metrics::Gauge::Noop();
};

}  // namespace bestpeer::gossip

#endif  // BESTPEER_GOSSIP_GOSSIP_H_
