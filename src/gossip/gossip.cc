#include "gossip/gossip.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"

namespace bestpeer::gossip {

GossipAgent::GossipAgent(net::Transport* transport, GossipOptions options)
    : transport_(transport),
      options_(options),
      node_(transport->local()),
      // One fleet-wide seed still gives every node an independent,
      // reproducible selection stream (the +1 keeps node 0 distinct from
      // an unmixed seed).
      rng_(options.seed ^ (0x9E3779B97F4A7C15ULL * (node_ + 1))) {
  if (options_.fanout == 0) options_.fanout = 1;
  if (options_.hot_rounds == 0) options_.hot_rounds = 1;
  if (options_.metrics != nullptr) {
    // Fleet-shared instruments, same convention as core.* — every agent
    // registered against one registry feeds the same totals.
    auto* m = options_.metrics;
    rounds_c_ = m->GetCounter("gossip.rounds");
    frames_sent_c_ = m->GetCounter("gossip.frames_sent");
    frames_received_c_ = m->GetCounter("gossip.frames_received");
    items_sent_c_ = m->GetCounter("gossip.items_sent");
    items_applied_c_ = m->GetCounter("gossip.items_applied");
    duplicates_c_ = m->GetCounter("gossip.duplicates");
    decode_errors_c_ = m->GetCounter("gossip.decode_errors");
    known_items_g_ = m->GetGauge("gossip.known_items");
  }
}

void GossipAgent::SetPeerProvider(
    std::function<std::vector<NodeId>()> provider) {
  peer_provider_ = std::move(provider);
}

void GossipAgent::SetApplyHook(std::function<void(const GossipItem&)> hook) {
  apply_hook_ = std::move(hook);
}

GossipAgent::Key GossipAgent::KeyOf(const GossipItem& item) {
  return Key(static_cast<uint8_t>(item.kind), item.origin, item.subject,
             item.holder);
}

GossipItem GossipAgent::ItemOf(const Key& key, const Entry& entry) const {
  GossipItem item;
  item.kind = static_cast<ItemKind>(std::get<0>(key));
  item.origin = std::get<1>(key);
  item.subject = std::get<2>(key);
  item.holder = std::get<3>(key);
  item.version = entry.version;
  item.payload = entry.payload;
  return item;
}

bool GossipAgent::Upsert(const GossipItem& item) {
  auto [it, inserted] = state_.try_emplace(KeyOf(item));
  if (!inserted && it->second.version >= item.version) return false;
  it->second.version = item.version;
  it->second.payload = item.payload;
  it->second.hot = options_.hot_rounds;
  // The gauge is fleet-shared, so deltas (not Set) keep it a sum.
  if (inserted) known_items_g_->Add(1);
  return true;
}

void GossipAgent::AnnounceLocal(const GossipItem& item) {
  if (!Upsert(item)) return;
  ArmTimer();
}

void GossipAgent::AnnounceEpoch(uint64_t index_epoch) {
  GossipItem item;
  item.kind = ItemKind::kIndexEpoch;
  item.origin = node_;
  item.version = index_epoch;
  item.payload = index_epoch;
  AnnounceLocal(item);
}

void GossipAgent::AnnounceLeaseGrant(uint64_t object_id, NodeId holder,
                                     uint64_t source_epoch) {
  GossipItem item;
  item.kind = ItemKind::kLeaseGrant;
  item.origin = node_;
  item.subject = object_id;
  item.holder = holder;
  item.version = ++lease_seq_;
  item.payload = source_epoch;
  AnnounceLocal(item);
}

void GossipAgent::AnnounceLeaseExpire(uint64_t object_id,
                                      uint64_t generation) {
  GossipItem item;
  item.kind = ItemKind::kLeaseExpire;
  item.origin = node_;
  item.subject = object_id;
  item.holder = node_;
  item.version = ++lease_seq_;
  item.payload = generation;
  AnnounceLocal(item);
}

void GossipAgent::NotifyPeersChanged() {
  if (AnyHot()) ArmTimer();
}

bool GossipAgent::AnyHot() const {
  for (const auto& [key, entry] : state_) {
    if (entry.hot > 0) return true;
  }
  return false;
}

void GossipAgent::ArmTimer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  transport_->clock().ScheduleAfter(options_.round_interval,
                                    [this] { RunRound(); });
}

void GossipAgent::RunRound() {
  timer_armed_ = false;
  if (!AnyHot()) return;
  std::vector<NodeId> peers =
      peer_provider_ ? peer_provider_() : std::vector<NodeId>();
  if (peers.empty()) {
    // Isolated: rumors stay hot but we stop burning timer events.
    // NotifyPeersChanged() re-arms when the peer set recovers.
    return;
  }
  ++round_;
  rounds_++;
  rounds_c_->Increment();

  // Rumor frames carry only the hot items the target is not already
  // known to hold: full-state pushes would make every mutation cost
  // O(known items × fanout × hot_rounds) wire bytes, and re-offering a
  // peer what it told us is pure waste. Cold or filtered state still
  // converges through the pull half of OnMessage.
  rng_.Shuffle(peers);
  size_t targets = std::min(options_.fanout, peers.size());
  for (size_t i = 0; i < targets; ++i) {
    GossipFrame frame;
    frame.sender = node_;
    frame.round = round_;
    auto known_it = peer_known_.find(peers[i]);
    for (const auto& [key, entry] : state_) {
      if (entry.hot == 0) continue;
      if (known_it != peer_known_.end()) {
        auto seen = known_it->second.find(key);
        if (seen != known_it->second.end() &&
            seen->second >= entry.version) {
          continue;
        }
      }
      frame.items.push_back(ItemOf(key, entry));
    }
    if (!frame.items.empty()) SendFrame(peers[i], std::move(frame));
  }
  for (auto& [key, entry] : state_) {
    if (entry.hot > 0) --entry.hot;
  }
  if (AnyHot()) ArmTimer();
}

void GossipAgent::SendFrame(NodeId dst, GossipFrame frame) {
  frames_sent_++;
  frames_sent_c_->Increment();
  items_sent_c_->Add(frame.items.size());
  if (auto* flight = transport_->flight()) {
    obs::FlightEvent event;
    event.ts = transport_->clock().now();
    event.type = obs::EventType::kGossipSend;
    event.node = node_;
    event.peer = dst;
    event.a = frame.items.size();
    event.b = frame.round;
    flight->Record(event);
  }
  transport_->Send(dst, kGossipMsgType, EncodeGossipFrame(frame));
}

void GossipAgent::OnMessage(const net::Message& msg) {
  auto decoded = DecodeGossipFrame(msg.payload);
  if (!decoded.ok()) {
    decode_errors_++;
    decode_errors_c_->Increment();
    return;
  }
  frames_received_++;
  frames_received_c_->Increment();
  const GossipFrame& frame = decoded.value();

  // Everything the sender offers, it provably holds — future rumor
  // frames to it can skip those versions.
  auto& known = peer_known_[frame.sender];
  for (const GossipItem& item : frame.items) {
    uint64_t& seen = known[KeyOf(item)];
    if (item.version > seen) seen = item.version;
  }

  // The pull half: any offered item we know a strictly newer version of
  // goes back in a single response frame. Only offered keys are
  // corrected — rumor frames carry the hot subset, so an absent key says
  // nothing about what the sender knows.
  GossipFrame reply;
  bool is_response = (frame.flags & GossipFrame::kFlagResponse) != 0;
  if (!is_response) {
    for (const GossipItem& item : frame.items) {
      auto it = state_.find(KeyOf(item));
      if (it != state_.end() && it->second.version > item.version) {
        reply.items.push_back(ItemOf(it->first, it->second));
      }
    }
  }

  for (const GossipItem& item : frame.items) {
    if (!Upsert(item)) {
      duplicates_++;
      duplicates_c_->Increment();
      // Feedback death: the sender provably holds this exact version
      // too, so the rumor is saturating — lose interest one round early
      // rather than blindly re-pushing it hot_rounds more times. (A
      // strictly-newer local version keeps its full budget; the reply
      // below is about to correct the sender.)
      auto it = state_.find(KeyOf(item));
      if (it != state_.end() && it->second.hot > 0 &&
          it->second.version == item.version) {
        --it->second.hot;
      }
      continue;
    }
    items_applied_++;
    items_applied_c_->Increment();
    if (auto* flight = transport_->flight()) {
      obs::FlightEvent event;
      event.ts = transport_->clock().now();
      event.type = obs::EventType::kGossipApply;
      event.node = node_;
      event.peer = frame.sender;
      event.a = item.origin;
      event.b = item.version;
      flight->Record(event);
    }
    if (apply_hook_) apply_hook_(item);
  }

  if (!is_response && !reply.items.empty()) {
    reply.sender = node_;
    reply.round = round_;
    reply.flags = GossipFrame::kFlagResponse;
    SendFrame(frame.sender, std::move(reply));
  }
  // Freshly applied items are hot again — spread the rumor onward.
  if (AnyHot()) ArmTimer();
}

uint64_t GossipAgent::EpochOf(NodeId origin) const {
  auto it = state_.find(
      Key(static_cast<uint8_t>(ItemKind::kIndexEpoch), origin, 0, 0));
  return it == state_.end() ? 0 : it->second.payload;
}

std::map<NodeId, uint64_t> GossipAgent::KnownEpochs() const {
  std::map<NodeId, uint64_t> epochs;
  for (const auto& [key, entry] : state_) {
    if (std::get<0>(key) == static_cast<uint8_t>(ItemKind::kIndexEpoch)) {
      epochs[std::get<1>(key)] = entry.payload;
    }
  }
  return epochs;
}

bool GossipAgent::LeaseLive(uint64_t object_id, NodeId holder) const {
  // A grant is live until the holder's own expiry digest is at least as
  // recent. Grant and expiry live under different keys (origin differs),
  // so liveness is the cross-key comparison done here, not in Upsert.
  bool granted = false;
  for (const auto& [key, entry] : state_) {
    if (std::get<0>(key) == static_cast<uint8_t>(ItemKind::kLeaseGrant) &&
        std::get<2>(key) == object_id && std::get<3>(key) == holder) {
      granted = true;
      break;
    }
  }
  if (!granted) return false;
  auto expire = state_.find(Key(static_cast<uint8_t>(ItemKind::kLeaseExpire),
                                holder, object_id, holder));
  return expire == state_.end();
}

}  // namespace bestpeer::gossip
