#ifndef BESTPEER_GOSSIP_GOSSIP_FRAME_H_
#define BESTPEER_GOSSIP_GOSSIP_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::gossip {

/// Message type tag for gossip frames. Like every other protocol message
/// it travels over net::Transport, so the same rounds run over the
/// simulator and real TCP.
constexpr uint32_t kGossipMsgType = 0x42470001;  // "BG" + 1.

/// Payload format version (first field after the magic).
constexpr uint16_t kGossipFrameVersion = 1;
constexpr uint32_t kGossipFrameMagic = 0x31475042;  // "BPG1" in LE order.

/// Decode-side hard limit: an item count beyond this is treated as
/// corruption, not an allocation request (mirrors StatFrame).
constexpr size_t kGossipFrameMaxItems = 4096;

/// What a gossip item asserts about its origin node.
enum class ItemKind : uint8_t {
  /// `origin`'s StorM IndexEpoch is `payload` (version == payload, so
  /// newer epochs always win the version-vector comparison).
  kIndexEpoch = 1,
  /// `origin` (the pusher) granted a replica lease on object `subject`
  /// to node `holder`; `payload` is the pusher's IndexEpoch at push time.
  kLeaseGrant = 2,
  /// `origin` (the holder) expired or revoked its lease on object
  /// `subject`; `payload` is the lease generation that ended.
  kLeaseExpire = 3,
};

/// One rumor: a versioned fact about `origin`. The tuple
/// (kind, origin, subject, holder) is the version-vector key; `version`
/// is monotonic per key and decided by the fact's origin, so replaying
/// an older version is always a suppressible duplicate.
struct GossipItem {
  ItemKind kind = ItemKind::kIndexEpoch;
  uint32_t origin = 0;
  uint64_t subject = 0;  ///< Object id for leases; 0 for epochs.
  uint32_t holder = 0;   ///< Lease holder node; 0 for epochs.
  uint64_t version = 0;
  uint64_t payload = 0;
};

/// One push (or pull-back) of rumors between two gossip agents.
struct GossipFrame {
  /// The response bit suppresses a reply to the reply: a push earns at
  /// most one pull-back, never a ping-pong loop.
  static constexpr uint8_t kFlagResponse = 0x01;

  uint32_t sender = 0xFFFFFFFF;
  uint64_t round = 0;
  uint8_t flags = 0;
  std::vector<GossipItem> items;
};

/// Serializes a gossip frame (magic, version, sender, round, flags,
/// items).
Bytes EncodeGossipFrame(const GossipFrame& frame);

/// Bounds-checked decode; any truncation, bad magic/version, unknown
/// item kind or over-limit count returns InvalidArgument (never UB,
/// never a huge allocation). Trailing bytes are rejected.
Result<GossipFrame> DecodeGossipFrame(const Bytes& payload);

}  // namespace bestpeer::gossip

#endif  // BESTPEER_GOSSIP_GOSSIP_FRAME_H_
