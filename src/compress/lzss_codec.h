#ifndef BESTPEER_COMPRESS_LZSS_CODEC_H_
#define BESTPEER_COMPRESS_LZSS_CODEC_H_

#include "compress/codec.h"

namespace bestpeer {

/// LZSS compressor: LZ77-family sliding-window codec, the core transform
/// inside gzip/DEFLATE. Stands in for the paper's GZIP layer.
///
/// Format: [varint raw_len] then a token stream. Each group of up to 8
/// tokens is preceded by a flag byte (bit i set = token i is a match).
/// Literal tokens are 1 raw byte; match tokens are 2 bytes packing a
/// 12-bit distance (1..4096) and 4-bit length (3..18).
class LzssCodec : public Codec {
 public:
  static constexpr size_t kWindowSize = 4096;
  static constexpr size_t kMinMatch = 3;
  static constexpr size_t kMaxMatch = 18;

  std::string_view name() const override { return "lzss"; }
  Result<Bytes> Compress(const Bytes& input) const override;
  Result<Bytes> Decompress(const Bytes& input) const override;
};

}  // namespace bestpeer

#endif  // BESTPEER_COMPRESS_LZSS_CODEC_H_
