#include "compress/lzss_codec.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace bestpeer {

namespace {

// Hash of a 3-byte prefix, used to index candidate match positions.
inline uint32_t Hash3(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> 19;  // 13-bit hash.
}

constexpr size_t kHashSlots = 1 << 13;
constexpr int kChainProbes = 16;

}  // namespace

Result<Bytes> LzssCodec::Compress(const Bytes& input) const {
  BinaryWriter header;
  header.WriteVarint(input.size());
  Bytes out = header.Take();
  if (input.empty()) return out;

  // head[h]: most recent position whose 3-byte prefix hashed to h.
  // prev[i % window]: previous position in the same hash chain.
  std::vector<int64_t> head(kHashSlots, -1);
  std::vector<int64_t> prev(kWindowSize, -1);

  const uint8_t* data = input.data();
  const size_t n = input.size();

  size_t pos = 0;
  size_t flag_at = 0;  // Offset of the pending flag byte in `out`.
  int tokens_in_group = 0;

  auto begin_group = [&]() {
    flag_at = out.size();
    out.push_back(0);
    tokens_in_group = 0;
  };
  begin_group();

  auto insert_pos = [&](size_t p) {
    if (p + kMinMatch > n) return;
    uint32_t h = Hash3(data + p);
    prev[p % kWindowSize] = head[h];
    head[h] = static_cast<int64_t>(p);
  };

  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;

    if (pos + kMinMatch <= n) {
      uint32_t h = Hash3(data + pos);
      int64_t cand = head[h];
      int probes = kChainProbes;
      while (cand >= 0 && probes-- > 0) {
        size_t dist = pos - static_cast<size_t>(cand);
        if (dist == 0 || dist > kWindowSize) break;
        size_t limit = std::min(kMaxMatch, n - pos);
        size_t len = 0;
        const uint8_t* a = data + cand;
        const uint8_t* b = data + pos;
        while (len < limit && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == kMaxMatch) break;
        }
        int64_t nxt = prev[cand % kWindowSize];
        // Chains can wrap once positions fall out of the window; stop if
        // the link no longer points strictly backwards.
        if (nxt >= cand) break;
        cand = nxt;
      }
    }

    if (tokens_in_group == 8) begin_group();

    if (best_len >= kMinMatch) {
      // Match token: set flag bit; pack distance-1 (12 bits) and
      // length-kMinMatch (4 bits) into 2 bytes.
      out[flag_at] |= static_cast<uint8_t>(1u << tokens_in_group);
      uint16_t packed = static_cast<uint16_t>(
          ((best_dist - 1) << 4) | (best_len - kMinMatch));
      out.push_back(static_cast<uint8_t>(packed & 0xFF));
      out.push_back(static_cast<uint8_t>(packed >> 8));
      for (size_t i = 0; i < best_len; ++i) insert_pos(pos + i);
      pos += best_len;
    } else {
      out.push_back(data[pos]);
      insert_pos(pos);
      pos += 1;
    }
    ++tokens_in_group;
  }
  return out;
}

Result<Bytes> LzssCodec::Decompress(const Bytes& input) const {
  BinaryReader reader(input);
  BP_ASSIGN_OR_RETURN(uint64_t raw_len, reader.ReadVarint());
  // The format cannot expand a token stream by more than ~9x (a 17-byte
  // group of 8 match tokens decodes to at most 144 bytes). A declared
  // length beyond that bound is corrupt — and must be rejected *before*
  // reserving memory, or hostile input could force huge allocations.
  if (raw_len > (input.size() + 1) * 16) {
    return Status::Corruption("lzss: declared length implausibly large");
  }
  Bytes out;
  out.reserve(raw_len);

  while (out.size() < raw_len) {
    BP_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
    for (int bit = 0; bit < 8 && out.size() < raw_len; ++bit) {
      if (flags & (1u << bit)) {
        BP_ASSIGN_OR_RETURN(uint8_t lo, reader.ReadU8());
        BP_ASSIGN_OR_RETURN(uint8_t hi, reader.ReadU8());
        uint16_t packed =
            static_cast<uint16_t>(lo) | (static_cast<uint16_t>(hi) << 8);
        size_t dist = static_cast<size_t>(packed >> 4) + 1;
        size_t len = static_cast<size_t>(packed & 0x0F) + kMinMatch;
        if (dist > out.size()) {
          return Status::Corruption("lzss: match distance exceeds output");
        }
        if (out.size() + len > raw_len) {
          return Status::Corruption("lzss: match overruns declared length");
        }
        size_t src = out.size() - dist;
        for (size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
      } else {
        BP_ASSIGN_OR_RETURN(uint8_t b, reader.ReadU8());
        out.push_back(b);
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("lzss: trailing bytes after declared length");
  }
  return out;
}

}  // namespace bestpeer
