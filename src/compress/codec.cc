#include "compress/codec.h"

#include "compress/lzss_codec.h"

namespace bestpeer {

Result<std::shared_ptr<const Codec>> MakeCodec(std::string_view name) {
  if (name == "null") {
    return std::shared_ptr<const Codec>(std::make_shared<NullCodec>());
  }
  if (name == "lzss") {
    return std::shared_ptr<const Codec>(std::make_shared<LzssCodec>());
  }
  return Status::InvalidArgument("unknown codec: " + std::string(name));
}

}  // namespace bestpeer
