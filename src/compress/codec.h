#ifndef BESTPEER_COMPRESS_CODEC_H_
#define BESTPEER_COMPRESS_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer {

/// Lossless byte-stream codec interface.
///
/// The paper (Section 4.2) compresses every agent and message with GZIP,
/// transparently to application code. BestPeer's transport applies a Codec
/// to each payload before it is charged to the simulated wire, so smaller
/// payloads genuinely reduce transmission time.
class Codec {
 public:
  virtual ~Codec() = default;

  /// The codec's registered name ("null", "lzss").
  virtual std::string_view name() const = 0;

  /// Compresses `input`; the output must round-trip through Decompress.
  virtual Result<Bytes> Compress(const Bytes& input) const = 0;

  /// Decompresses a buffer produced by Compress.
  virtual Result<Bytes> Decompress(const Bytes& input) const = 0;
};

/// Identity codec (compression disabled).
class NullCodec : public Codec {
 public:
  std::string_view name() const override { return "null"; }
  Result<Bytes> Compress(const Bytes& input) const override { return input; }
  Result<Bytes> Decompress(const Bytes& input) const override {
    return input;
  }
};

/// Returns a codec by name ("null", "lzss"), or InvalidArgument.
Result<std::shared_ptr<const Codec>> MakeCodec(std::string_view name);

}  // namespace bestpeer

#endif  // BESTPEER_COMPRESS_CODEC_H_
