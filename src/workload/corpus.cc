#include "workload/corpus.h"

namespace bestpeer::workload {

CorpusGenerator::CorpusGenerator(const CorpusOptions& options, uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.vocabulary, options.zipf_skew) {}

std::string CorpusGenerator::RandomWord() {
  size_t rank = zipf_.Sample(rng_);
  return "w" + std::to_string(rank);
}

Bytes CorpusGenerator::MakeObject(bool match) {
  std::string text;
  text.reserve(options_.object_size + 16);
  if (match) {
    text += kNeedle;
    text += ' ';
  }
  while (text.size() < options_.object_size) {
    text += RandomWord();
    text += ' ';
  }
  text.resize(options_.object_size);
  // Truncation may leave a trailing fragment; that is fine — fragments of
  // vocabulary words never equal the needle token.
  return ToBytes(text);
}

Bytes CorpusGenerator::MakeObject(bool match,
                                  const std::vector<std::string>& tokens) {
  std::string text;
  text.reserve(options_.object_size + 16);
  if (match) {
    for (const std::string& token : tokens) {
      text += token;
      text += ' ';
    }
  }
  while (text.size() < options_.object_size) {
    text += RandomWord();
    text += ' ';
  }
  text.resize(options_.object_size);
  return ToBytes(text);
}

std::string CorpusGenerator::MakeFileName(bool match, size_t serial) {
  std::string name;
  if (match) {
    name = std::string(kNeedle) + "-" + RandomWord() + "-" +
           std::to_string(serial) + ".txt";
  } else {
    name = RandomWord() + "-" + RandomWord() + "-" +
           std::to_string(serial) + ".txt";
  }
  return name;
}

}  // namespace bestpeer::workload
