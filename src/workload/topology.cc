#include "workload/topology.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace bestpeer::workload {

std::vector<std::vector<size_t>> Topology::Adjacency() const {
  std::vector<std::vector<size_t>> adj(node_count);
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
  return adj;
}

size_t Topology::Degree(size_t node) const {
  size_t d = 0;
  for (const auto& [a, b] : edges) {
    if (a == node || b == node) ++d;
  }
  return d;
}

std::vector<size_t> Topology::Distances(size_t from) const {
  auto adj = Adjacency();
  std::vector<size_t> dist(node_count, std::numeric_limits<size_t>::max());
  std::deque<size_t> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (size_t v : adj[u]) {
      if (dist[v] == std::numeric_limits<size_t>::max()) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool Topology::Connected() const {
  if (node_count == 0) return true;
  auto dist = Distances(base);
  for (size_t d : dist) {
    if (d == std::numeric_limits<size_t>::max()) return false;
  }
  return true;
}

Topology MakeStar(size_t node_count) {
  assert(node_count >= 1);
  Topology t;
  t.name = "star";
  t.node_count = node_count;
  t.base = 0;
  for (size_t i = 1; i < node_count; ++i) t.edges.emplace_back(0, i);
  return t;
}

Topology MakeTree(size_t node_count, size_t fanout) {
  assert(node_count >= 1 && fanout >= 1);
  Topology t;
  t.name = "tree";
  t.node_count = node_count;
  t.base = 0;
  for (size_t i = 1; i < node_count; ++i) {
    size_t parent = (i - 1) / fanout;
    t.edges.emplace_back(parent, i);
  }
  return t;
}

size_t TreeNodeCount(size_t levels, size_t fanout) {
  size_t total = 1;
  size_t level_size = 1;
  for (size_t l = 0; l < levels; ++l) {
    level_size *= fanout;
    total += level_size;
  }
  return total;
}

Topology MakeLine(size_t node_count) {
  assert(node_count >= 1);
  Topology t;
  t.name = "line";
  t.node_count = node_count;
  t.base = 0;
  for (size_t i = 0; i + 1 < node_count; ++i) t.edges.emplace_back(i, i + 1);
  return t;
}

Topology MakeRandom(size_t node_count, size_t max_degree, Rng& rng) {
  assert(node_count >= 1 && max_degree >= 1);
  Topology t;
  t.name = "random";
  t.node_count = node_count;
  t.base = 0;

  std::vector<size_t> degree(node_count, 0);
  auto has_edge = [&t](size_t a, size_t b) {
    if (a > b) std::swap(a, b);
    for (const auto& [x, y] : t.edges) {
      if (x == a && y == b) return true;
    }
    return false;
  };

  // Spanning structure first (guarantees connectivity): attach each node
  // to a random earlier node with spare degree.
  for (size_t i = 1; i < node_count; ++i) {
    // Collect earlier nodes with spare degree.
    std::vector<size_t> candidates;
    for (size_t j = 0; j < i; ++j) {
      if (degree[j] < max_degree) candidates.push_back(j);
    }
    size_t parent;
    if (candidates.empty()) {
      // Everyone is full: attach anyway to a random earlier node (degree
      // caps are soft for connectivity).
      parent = rng.NextBounded(i);
    } else {
      parent = candidates[rng.NextBounded(candidates.size())];
    }
    t.edges.emplace_back(std::min(parent, i), std::max(parent, i));
    ++degree[parent];
    ++degree[i];
  }

  // Densify with extra random edges up to the degree cap.
  size_t attempts = node_count * max_degree;
  for (size_t a = 0; a < attempts; ++a) {
    size_t u = rng.NextBounded(node_count);
    size_t v = rng.NextBounded(node_count);
    if (u == v) continue;
    if (degree[u] >= max_degree || degree[v] >= max_degree) continue;
    if (has_edge(u, v)) continue;
    t.edges.emplace_back(std::min(u, v), std::max(u, v));
    ++degree[u];
    ++degree[v];
  }
  return t;
}

}  // namespace bestpeer::workload
