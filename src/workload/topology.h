#ifndef BESTPEER_WORKLOAD_TOPOLOGY_H_
#define BESTPEER_WORKLOAD_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace bestpeer::workload {

/// A logical overlay layout used in the evaluation (paper §4.3, Fig. 4):
/// which node is whose peer, plus which node initiates queries.
struct Topology {
  std::string name;
  size_t node_count = 0;
  /// Index of the base node that issues the search query.
  size_t base = 0;
  /// Undirected overlay edges (a < b).
  std::vector<std::pair<size_t, size_t>> edges;

  /// Adjacency list view.
  std::vector<std::vector<size_t>> Adjacency() const;

  /// Degree of one node.
  size_t Degree(size_t node) const;

  /// BFS hop distance from `from` to every node (SIZE_MAX = unreachable).
  std::vector<size_t> Distances(size_t from) const;

  /// True iff every node is reachable from the base.
  bool Connected() const;
};

/// Star: node 0 is the centre and the base; all others connect to it.
Topology MakeStar(size_t node_count);

/// Complete k-ary tree filled level by level with `node_count` nodes;
/// node 0 is the root and the base.
Topology MakeTree(size_t node_count, size_t fanout);

/// Number of nodes in a complete k-ary tree with `levels` levels below
/// the root (levels = 0 is just the root).
size_t TreeNodeCount(size_t levels, size_t fanout);

/// Line: 0 - 1 - 2 - ... - (n-1); node 0 (leftmost) is the base.
Topology MakeLine(size_t node_count);

/// Connected random graph where every node has at most `max_degree`
/// neighbours (>= 1). Used for the Gnutella comparison ("each node has up
/// to 8 directly connected peers").
Topology MakeRandom(size_t node_count, size_t max_degree, Rng& rng);

}  // namespace bestpeer::workload

#endif  // BESTPEER_WORKLOAD_TOPOLOGY_H_
