#include "workload/churn.h"

#include "net/sim_transport.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "core/node.h"
#include "core/search_agent.h"
#include "liglo/liglo_server.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace bestpeer::workload {

namespace {

// Mirrors the env overrides RunExperiment honours so the fault benches
// can drive both experiment kinds with one set of variables.
SimTime ChurnSampleInterval(const ChurnOptions& options) {
  if (const char* env = std::getenv("BP_SAMPLE_INTERVAL_US")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<SimTime>(v);
  }
  return options.sample_interval;
}

size_t ChurnFlightCapacity(const ChurnOptions& options) {
  if (options.flight_capacity > 0) return options.flight_capacity;
  if (std::getenv("BP_FLIGHT_OUT") != nullptr) {
    return obs::FlightRecorderOptions{}.capacity;
  }
  return 0;
}

/// One span covering a whole churn query, from issue to last answer.
void RecordChurnQuerySpan(sim::Simulator& simulator, uint32_t base_node,
                          uint64_t query_id, SimTime start,
                          SimTime duration) {
  trace::TraceRecorder* recorder = simulator.trace();
  if (recorder == nullptr) return;
  trace::Span span;
  span.name = "query";
  span.cat = "query";
  span.tid = base_node;
  span.ts = start;
  span.dur = duration;
  span.flow = query_id;
  recorder->RecordSpan(std::move(span));
}

}  // namespace

double ChurnResult::MeanRecall() const {
  if (rounds.empty()) return 1.0;
  double sum = 0;
  for (const auto& r : rounds) sum += r.Recall();
  return sum / static_cast<double>(rounds.size());
}

double ChurnResult::MinRecall() const {
  double min = 1.0;
  for (const auto& r : rounds) min = std::min(min, r.Recall());
  return min;
}

Result<ChurnResult> RunChurnExperiment(const ChurnOptions& options) {
  if (options.node_count < 2) {
    return Status::InvalidArgument("need at least a base and one peer");
  }
  Rng rng(options.seed);
  sim::Simulator simulator;
  if (options.trace || std::getenv("BP_TRACE_OUT") != nullptr) {
    simulator.EnableTracing();
  }
  if (const size_t capacity = ChurnFlightCapacity(options)) {
    obs::FlightRecorderOptions fo;
    fo.capacity = capacity;
    if (const char* out = std::getenv("BP_FLIGHT_OUT")) {
      fo.auto_dump_path = out;
    }
    simulator.EnableFlightRecorder(fo);
  }
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  std::unique_ptr<obs::SamplerDriver> sampler_driver;
  const SimTime sample_interval = ChurnSampleInterval(options);
  if (sample_interval > 0 && options.metrics != nullptr) {
    sampler = std::make_unique<obs::TimeSeriesSampler>(options.metrics,
                                                       sample_interval);
    sampler->AddDefaultColumns();
    sampler_driver =
        std::make_unique<obs::SamplerDriver>(&simulator, sampler.get());
  }
  options.fault.EnableOn(&simulator, options.seed, options.metrics);
  sim::NetworkOptions net_options;
  net_options.metrics = options.metrics;
  sim::SimNetwork network(&simulator, net_options);
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  // LIGLO server on its own machine.
  net::Transport* server_transport = fleet.AddNode();
  NodeId server_id = server_transport->local();
  net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServerOptions server_options;
  server_options.initial_peer_count = options.starter_peers;
  server_options.sweep_interval = Millis(100);
  server_options.ping_timeout = Millis(20);
  server_options.sample_seed = options.seed ^ 0x5EED;
  liglo::LigloServer liglo_server(server_transport, &server_dispatcher,
                                  &infra.ip_directory, server_options);

  core::BestPeerConfig config;
  config.max_direct_peers = options.starter_peers + 2;
  config.strategy = options.reconfigure ? "maxcount" : "none";
  config.default_ttl = static_cast<uint16_t>(options.ttl);
  options.fault.ApplyTo(&config);
  config.metrics = options.metrics;

  CorpusGenerator corpus({512, 300, 0.8}, options.seed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  std::vector<bool> online(options.node_count, true);
  for (size_t i = 0; i < options.node_count; ++i) {
    BP_ASSIGN_OR_RETURN(auto node, core::BestPeerNode::Create(
                                       fleet.AddNode(), &infra, config));
    BP_RETURN_IF_ERROR(node->InitStorage({}));
    for (size_t o = 0; o < options.objects_per_node; ++o) {
      bool match = i != 0 && o < options.matches_per_node;
      BP_RETURN_IF_ERROR(node->ShareObject(
          (static_cast<uint64_t>(i) << 24) | o, corpus.MakeObject(match)));
    }
    infra.code_cache.Load(node->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(node));
  }
  // Everyone joins through the LIGLO server (builds the overlay).
  for (auto& node : nodes) {
    liglo::IpAddress ip = infra.ip_directory.AssignFresh(node->node());
    node->JoinNetwork(server_id, ip, nullptr);
    simulator.RunUntilIdle();
  }

  core::BestPeerNode& base = *nodes[0];
  ChurnResult result;
  // Re-armed before every run: the driver parks when the queue drains.
  auto arm_sampler = [&sampler_driver]() {
    if (sampler_driver != nullptr) sampler_driver->Arm();
  };
  for (size_t round = 0; round < options.rounds; ++round) {
    // --- churn step (skipped before the first round) -------------------
    if (round > 0) {
      // Departures: silent — no LIGLO notice, no peer notice.
      std::vector<size_t> online_now;
      for (size_t i = 1; i < options.node_count; ++i) {
        if (online[i]) online_now.push_back(i);
      }
      rng.Shuffle(online_now);
      size_t leave = static_cast<size_t>(
          static_cast<double>(online_now.size()) * options.leave_fraction);
      std::vector<bool> left_this_round(options.node_count, false);
      for (size_t k = 0; k < leave; ++k) {
        size_t victim = online_now[k];
        online[victim] = false;
        left_this_round[victim] = true;
        network.SetOnline(nodes[victim]->node(), false);
      }
      // Returns: new address + the §2 rejoin protocol. Nodes that just
      // departed are NOT candidates — a same-round rejoin would undo the
      // departure and overstate recall under heavy churn.
      std::vector<size_t> offline_now;
      for (size_t i = 1; i < options.node_count; ++i) {
        if (!online[i] && !left_this_round[i]) offline_now.push_back(i);
      }
      rng.Shuffle(offline_now);
      size_t rejoin = static_cast<size_t>(
          static_cast<double>(offline_now.size()) *
          options.rejoin_fraction);
      // The LIGLO validity sweep notices silent departures, so the
      // rejoiners below get live peers from DiscoverPeers.
      liglo_server.StartSweep();
      arm_sampler();
      simulator.RunUntil(simulator.now() + Millis(300));
      liglo_server.StopSweep();
      simulator.RunUntilIdle();

      for (size_t k = 0; k < rejoin; ++k) {
        size_t comer = offline_now[k];
        online[comer] = true;
        network.SetOnline(nodes[comer]->node(), true);
        liglo::IpAddress ip =
            infra.ip_directory.AssignFresh(nodes[comer]->node());
        nodes[comer]->RejoinNetwork(ip, nullptr);
        arm_sampler();
        simulator.RunUntilIdle();
      }
    }

    // --- query round ----------------------------------------------------
    ChurnRound metrics;
    for (size_t i = 1; i < options.node_count; ++i) {
      if (online[i]) {
        ++metrics.online_nodes;
        metrics.available_answers += options.matches_per_node;
      }
    }
    BP_ASSIGN_OR_RETURN(uint64_t query_id,
                        base.IssueSearch(CorpusGenerator::kNeedle));
    arm_sampler();
    simulator.RunUntilIdle();
    const core::QuerySession* session = base.FindSession(query_id);
    if (session == nullptr) return Status::Internal("session lost");
    metrics.received_answers = session->total_answers();
    metrics.completion = session->completion_time();
    RecordChurnQuerySpan(simulator, static_cast<uint32_t>(base.node()),
                         query_id, session->start_time(),
                         session->completion_time());
    if (options.recall_anomaly_threshold > 0 &&
        metrics.Recall() < options.recall_anomaly_threshold) {
      if (obs::FlightRecorder* flight = simulator.flight()) {
        flight->TripAnomaly(
            simulator.now(),
            "recall " + std::to_string(metrics.Recall()) + " below " +
                std::to_string(options.recall_anomaly_threshold) +
                " round=" + std::to_string(round));
      }
    }
    result.rounds.push_back(metrics);

    if (options.reconfigure) {
      BP_RETURN_IF_ERROR(base.Reconfigure(query_id));
      arm_sampler();
      simulator.RunUntilIdle();
    }
  }
  result.trace = simulator.shared_trace();
  result.flight = simulator.shared_flight();
  if (sampler != nullptr) result.timeseries = sampler->Take();
  if (result.flight != nullptr) {
    if (const char* out = std::getenv("BP_FLIGHT_OUT")) {
      Status s = result.flight->WriteNdjson(out);
      if (!s.ok()) {
        BP_LOG(Warn) << "BP_FLIGHT_OUT write failed: " << s.ToString();
      }
    }
  }
  return result;
}

}  // namespace bestpeer::workload
