#ifndef BESTPEER_WORKLOAD_CHURN_H_
#define BESTPEER_WORKLOAD_CHURN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/sim_time.h"
#include "util/trace.h"
#include "workload/fault_options.h"

namespace bestpeer::workload {

/// Membership-churn experiment: the scenario LIGLO exists for (§2, §3.4).
/// Nodes join through a LIGLO server, then between query rounds a
/// fraction of them silently disappears and previously departed nodes
/// return with *fresh addresses*, re-entering via the rejoin protocol.
/// Measures how much of the available data each query still reaches.
struct ChurnOptions {
  size_t node_count = 24;
  /// Peers handed out per registration (initial overlay connectivity).
  size_t starter_peers = 4;
  size_t objects_per_node = 100;
  size_t matches_per_node = 5;
  /// Query rounds to run.
  size_t rounds = 6;
  /// Fraction of online non-base nodes that silently depart each round.
  double leave_fraction = 0.2;
  /// Fraction of departed nodes that rejoin (new IP) each round.
  double rejoin_fraction = 0.5;
  /// Reconfigure the base node after each round (BPR) or not (BPS).
  bool reconfigure = true;
  uint16_t ttl = 32;
  uint64_t seed = 42;

  // --- fault injection & recovery (defaults keep both off) --------------

  /// Shared fault-injection/recovery knob block (see fault_options.h).
  FaultRecoveryOptions fault;

  /// Optional metrics sink: receives net.*, fault.*, liglo.* and core.*
  /// counters from the run (not owned; must outlive the call).
  metrics::Registry* metrics = nullptr;

  // --- observability (defaults keep everything off) ---------------------

  /// Record per-query trace spans (query launch, agent hops, scans,
  /// answer return). Also forced on when BP_TRACE_OUT is set.
  bool trace = false;

  /// Sim-time sampling cadence for the result's `timeseries`; requires
  /// `metrics` to be set. 0 = off; BP_SAMPLE_INTERVAL_US overrides.
  SimTime sample_interval = 0;

  /// Flight-recorder ring capacity in events (0 = off). BP_FLIGHT_OUT
  /// also enables it and dumps the NDJSON there on return.
  size_t flight_capacity = 0;

  /// Trip a flight-recorder anomaly (auto-dumping when BP_FLIGHT_OUT is
  /// set) whenever a round's recall drops below this. 0 = never.
  double recall_anomaly_threshold = 0.0;
};

/// Outcome of one churn round.
struct ChurnRound {
  size_t online_nodes = 0;
  /// Matches held by currently online non-base nodes.
  size_t available_answers = 0;
  /// Matches the query actually retrieved.
  size_t received_answers = 0;
  SimTime completion = 0;

  double Recall() const {
    return available_answers == 0
               ? 1.0
               : static_cast<double>(received_answers) /
                     static_cast<double>(available_answers);
  }
};

struct ChurnResult {
  std::vector<ChurnRound> rounds;
  /// Per-query trace spans, present iff tracing was on.
  std::shared_ptr<trace::TraceRecorder> trace;
  /// Periodic Registry samples, non-empty iff sampling was on.
  obs::TimeSeries timeseries;
  /// Flight-recorder ring, present iff flight recording was on.
  std::shared_ptr<obs::FlightRecorder> flight;

  double MeanRecall() const;
  double MinRecall() const;
};

/// Runs the experiment; deterministic per options.
Result<ChurnResult> RunChurnExperiment(const ChurnOptions& options);

}  // namespace bestpeer::workload

#endif  // BESTPEER_WORKLOAD_CHURN_H_
