#ifndef BESTPEER_WORKLOAD_CORPUS_H_
#define BESTPEER_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace bestpeer::workload {

/// Synthetic data generator for the experiments of §4.2: each node stores
/// 1000 objects of 1 KB; keywords are drawn from a Zipf-skewed synthetic
/// vocabulary. The query keyword is a reserved token ("needle") that only
/// designated matching objects contain, so experiments control exactly
/// which nodes answer and with how many objects.
struct CorpusOptions {
  size_t object_size = 1024;
  size_t vocabulary = 500;
  double zipf_skew = 0.8;
};

class CorpusGenerator {
 public:
  /// The reserved query keyword.
  static constexpr const char* kNeedle = "needle";

  CorpusGenerator(const CorpusOptions& options, uint64_t seed);

  /// Generates one object's text content. When `match` is true the
  /// content contains kNeedle as a whole token; otherwise it is
  /// guaranteed not to. Content is padded/truncated to object_size.
  Bytes MakeObject(bool match);

  /// Like MakeObject(match), but matching objects lead with all of
  /// `tokens` instead of the single needle, so one object answers every
  /// query in a pooled-keyword workload. The non-match path draws the
  /// same words as MakeObject(false).
  Bytes MakeObject(bool match, const std::vector<std::string>& tokens);

  /// Generates a shareable text-file name ("w42-w17-doc3.txt"); matching
  /// names contain kNeedle.
  std::string MakeFileName(bool match, size_t serial);

  /// A random (non-needle) vocabulary word.
  std::string RandomWord();

  const CorpusOptions& options() const { return options_; }

 private:
  CorpusOptions options_;
  Rng rng_;
  ZipfSampler zipf_;
};

}  // namespace bestpeer::workload

#endif  // BESTPEER_WORKLOAD_CORPUS_H_
