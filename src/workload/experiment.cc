#include "workload/experiment.h"

#include "net/sim_transport.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "baseline/cs_node.h"
#include "baseline/gnutella.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/logging.h"

namespace bestpeer::workload {

std::string SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kScs:
      return "SCS";
    case Scheme::kMcs:
      return "MCS";
    case Scheme::kBps:
      return "BPS";
    case Scheme::kBpr:
      return "BPR";
    case Scheme::kGnutella:
      return "Gnutella";
  }
  return "?";
}

double ExperimentResult::MeanCompletionMs() const {
  if (queries.empty()) return 0;
  double sum = 0;
  for (const auto& q : queries) sum += ToMillis(q.completion);
  return sum / static_cast<double>(queries.size());
}

double ExperimentResult::CompletionMs(size_t query_index) const {
  if (query_index >= queries.size()) return 0;
  return ToMillis(queries[query_index].completion);
}

double ExperimentResult::LastCompletionMs() const {
  if (queries.empty()) return 0;
  return ToMillis(queries.back().completion);
}

size_t ExperimentResult::TotalAnswers() const {
  size_t n = 0;
  for (const auto& q : queries) n += q.total_answers;
  return n;
}

std::vector<size_t> FarHotPlacement(const Topology& topology,
                                    size_t hot_count, size_t matches_each) {
  std::vector<size_t> matches(topology.node_count, 0);
  auto dist = topology.Distances(topology.base);
  std::vector<size_t> order(topology.node_count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&dist](size_t a, size_t b) {
    return dist[a] > dist[b];
  });
  size_t placed = 0;
  for (size_t node : order) {
    if (node == topology.base) continue;
    matches[node] = matches_each;
    if (++placed >= hot_count) break;
  }
  return matches;
}

namespace {

storm::ObjectId GlobalObjectId(size_t node, size_t i) {
  return (static_cast<storm::ObjectId>(node) << 24) | i;
}

/// The pooled query keywords of the Zipf-repeat mode ("needle0"...).
std::vector<std::string> PoolTokens(const ExperimentOptions& options) {
  std::vector<std::string> tokens;
  tokens.reserve(options.query_pool);
  for (size_t i = 0; i < options.query_pool; ++i) {
    tokens.push_back(std::string(CorpusGenerator::kNeedle) +
                     std::to_string(i));
  }
  return tokens;
}

/// Populates one storm store with the experiment corpus.
Status PopulateStore(const ExperimentOptions& options, size_t node,
                     CorpusGenerator& corpus,
                     const std::function<Status(storm::ObjectId,
                                                const Bytes&)>& put) {
  size_t matches = options.MatchesAt(node);
  if (options.query_pool > 0) {
    const std::vector<std::string> tokens = PoolTokens(options);
    for (size_t i = 0; i < options.objects_per_node; ++i) {
      bool match = i < matches;
      BP_RETURN_IF_ERROR(
          put(GlobalObjectId(node, i), corpus.MakeObject(match, tokens)));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < options.objects_per_node; ++i) {
    bool match = i < matches;
    BP_RETURN_IF_ERROR(put(GlobalObjectId(node, i), corpus.MakeObject(match)));
  }
  return Status::OK();
}

storm::StormOptions StoreOptions(const ExperimentOptions& options) {
  storm::StormOptions s;
  s.buffer_frames = 128;
  s.replacement = "lru";
  // Default experiments use the scan path (the StorM agent); the index
  // is built only when a path actually reads it.
  s.build_index =
      options.use_index_search || options.enable_content_summaries;
  s.enable_query_cache = options.enable_query_cache;
  return s;
}

/// True when the run should record trace spans (option or BP_TRACE_OUT).
bool TraceRequested(const ExperimentOptions& options) {
  return options.trace || std::getenv("BP_TRACE_OUT") != nullptr;
}

/// The effective sampling cadence (BP_SAMPLE_INTERVAL_US wins; 0 = off).
SimTime SampleInterval(const ExperimentOptions& options) {
  if (const char* env = std::getenv("BP_SAMPLE_INTERVAL_US")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<SimTime>(v);
  }
  return options.sample_interval;
}

/// The effective flight ring capacity (BP_FLIGHT_OUT enables; 0 = off).
size_t FlightCapacity(const ExperimentOptions& options) {
  if (options.flight_capacity > 0) return options.flight_capacity;
  if (std::getenv("BP_FLIGHT_OUT") != nullptr) {
    return obs::FlightRecorderOptions{}.capacity;
  }
  return 0;
}

/// Enables the simulator's flight recorder when requested. Called before
/// any protocol stack registers message-type names so the recorder sees
/// them all.
void MaybeEnableFlight(sim::Simulator* simulator,
                       const ExperimentOptions& options) {
  const size_t capacity = FlightCapacity(options);
  if (capacity == 0) return;
  obs::FlightRecorderOptions fo;
  fo.capacity = capacity;
  if (const char* out = std::getenv("BP_FLIGHT_OUT")) fo.auto_dump_path = out;
  simulator->EnableFlightRecorder(fo);
}

/// Sampler + driver when sampling is on (both null otherwise). One
/// object so the Run* functions stay one-liners.
struct Sampling {
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  std::unique_ptr<obs::SamplerDriver> driver;

  Sampling(sim::Simulator* simulator, const metrics::Registry* registry,
           const ExperimentOptions& options) {
    const SimTime interval = SampleInterval(options);
    if (interval <= 0) return;
    sampler = std::make_unique<obs::TimeSeriesSampler>(registry, interval);
    sampler->AddDefaultColumns();
    driver = std::make_unique<obs::SamplerDriver>(simulator, sampler.get());
  }

  /// Re-arms per query round (the driver stops when the queue drains).
  void Arm() {
    if (driver != nullptr) driver->Arm();
  }

  void Finish(ExperimentResult* result) {
    if (sampler != nullptr) result->timeseries = sampler->Take();
  }
};

/// One span covering a whole query, from issue to last answer.
void RecordQuerySpan(sim::Simulator& simulator, uint32_t base_node,
                     uint64_t query_id, SimTime start, SimTime duration) {
  trace::TraceRecorder* recorder = simulator.trace();
  if (recorder == nullptr) return;
  trace::Span span;
  span.name = "query";
  span.cat = "query";
  span.tid = base_node;
  span.ts = start;
  span.dur = duration;
  span.flow = query_id;
  recorder->RecordSpan(std::move(span));
}

// ------------------------------------------------------------------ BestPeer

Result<ExperimentResult> RunBestPeer(const ExperimentOptions& options) {
  // Declared first so instruments outlive every component holding handles.
  metrics::Registry registry;
  sim::Simulator simulator;
  if (TraceRequested(options)) simulator.EnableTracing();
  MaybeEnableFlight(&simulator, options);
  Sampling sampling(&simulator, &registry, options);
  options.fault.EnableOn(&simulator, options.seed, &registry);
  sim::NetworkOptions net_options = options.net;
  net_options.metrics = &registry;
  sim::SimNetwork network(&simulator, net_options);
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  const Topology& topo = options.topology;
  std::vector<NodeId> ids;
  ids.reserve(topo.node_count);
  for (size_t i = 0; i < topo.node_count; ++i) ids.push_back(network.AddNode());

  core::BestPeerConfig config;
  config.max_direct_peers = options.max_direct_peers;
  config.strategy =
      options.scheme == Scheme::kBpr ? options.strategy : "none";
  config.answer_mode = options.answer_mode;
  config.auto_fetch = options.auto_fetch;
  config.codec = options.codec;
  config.default_ttl = options.ttl;
  config.metrics = &registry;
  config.enable_result_cache = options.enable_result_cache;
  config.result_cache_bytes = options.result_cache_bytes;
  config.cache_lru_only = options.cache_lru_only;
  config.enable_replication = options.enable_replication;
  config.replica_hot_threshold = options.replica_hot_threshold;
  config.replica_top_k = options.replica_top_k;
  // RunUntilIdle between queries drains every pending timer, so a finite
  // TTL would always expire replicas before the next query could benefit;
  // workload runs therefore map the option directly (0 = no expiry).
  config.replica_ttl = options.replica_ttl;
  config.use_index_search = options.use_index_search;
  config.enable_content_summaries = options.enable_content_summaries;
  config.enable_gossip = options.enable_gossip;
  config.gossip_fanout = options.gossip_fanout;
  config.gossip_interval = options.gossip_interval;
  config.gossip_seed = options.seed;
  config.qos_replica_placement = options.qos_replica_placement;
  config.replica_fanout = options.replica_fanout;
  config.count_stale_probes = options.count_stale_probes;
  options.fault.ApplyTo(&config);

  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  nodes.reserve(topo.node_count);
  CorpusGenerator corpus({options.object_size, 500, 0.8}, options.seed);
  for (size_t i = 0; i < topo.node_count; ++i) {
    BP_ASSIGN_OR_RETURN(auto node, core::BestPeerNode::Create(
                                       fleet.For(ids[i]), &infra, config));
    BP_RETURN_IF_ERROR(node->InitStorage(StoreOptions(options)));
    BP_RETURN_IF_ERROR(PopulateStore(
        options, i, corpus,
        [&node](storm::ObjectId id, const Bytes& content) {
          return node->ShareObject(id, content);
        }));
    nodes.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddDirectPeerLocal(ids[b]);
    nodes[b]->AddDirectPeerLocal(ids[a]);
  }
  if (options.enable_content_summaries) {
    // Store population scheduled debounced summary pushes; edges are
    // wired now, so draining here delivers every digest before query 1.
    simulator.RunUntilIdle();
  }
  if (options.prewarm_code_cache) {
    for (NodeId id : ids) {
      infra.code_cache.Load(id, core::kSearchAgentClass);
      infra.code_cache.Load(id, core::kComputeAgentClass);
    }
  }

  core::BestPeerNode& base = *nodes[topo.base];
  // Zipf-repeat mode draws keywords from a dedicated rng so enabling the
  // pool never perturbs the corpus stream (cache-off single-keyword runs
  // stay bit-identical).
  std::unique_ptr<Rng> query_rng;
  std::unique_ptr<ZipfSampler> query_zipf;
  if (options.query_pool > 0) {
    query_rng = std::make_unique<Rng>(options.seed ^ 0x51EE9ULL);
    query_zipf = std::make_unique<ZipfSampler>(options.query_pool,
                                               options.query_zipf_skew);
  }
  size_t mutation_cursor = 0;
  std::vector<size_t> mutated(topo.node_count, 0);
  ExperimentResult result;
  for (size_t q = 0; q < options.queries; ++q) {
    std::string keyword = CorpusGenerator::kNeedle;
    if (query_zipf != nullptr) {
      keyword = std::string(CorpusGenerator::kNeedle) +
                std::to_string(query_zipf->Sample(*query_rng));
    }
    BP_ASSIGN_OR_RETURN(uint64_t query_id, base.IssueSearch(keyword));
    sampling.Arm();
    simulator.RunUntilIdle();
    const core::QuerySession* session = base.FindSession(query_id);
    if (session == nullptr) {
      return Status::Internal("query session lost");
    }
    const bool content_fetched =
        options.answer_mode != core::AnswerMode::kIndicate ||
        options.auto_fetch;
    QueryMetrics metrics;
    metrics.completion = session->completion_time();
    metrics.total_answers = content_fetched ? session->total_answers()
                                            : session->total_indicated();
    metrics.unique_answers = session->unique_answers();
    metrics.responders = session->responder_count();
    metrics.responses = content_fetched &&
                                options.answer_mode ==
                                    core::AnswerMode::kIndicate
                            ? session->fetches()
                            : session->responses();
    for (auto& e : metrics.responses) e.time -= session->start_time();
    RecordQuerySpan(simulator, static_cast<uint32_t>(ids[topo.base]),
                    query_id, session->start_time(),
                    session->completion_time());
    result.queries.push_back(std::move(metrics));

    if (options.scheme == Scheme::kBpr) {
      BP_RETURN_IF_ERROR(base.Reconfigure(query_id));
      simulator.RunUntilIdle();  // Let connect/disconnect notices land.
    }

    if (options.mutate_every > 0 && (q + 1) % options.mutate_every == 0) {
      // Mid-workload StorM mutation: unshare one still-present matching
      // object at the next non-base node in rotation. Every cached result
      // naming that responder must be invalidated by the epoch bump.
      for (size_t attempt = 0; attempt < topo.node_count; ++attempt) {
        size_t node = (mutation_cursor + attempt) % topo.node_count;
        if (node == topo.base) continue;
        if (mutated[node] >= options.MatchesAt(node)) continue;
        size_t obj = mutated[node]++;
        BP_RETURN_IF_ERROR(
            nodes[node]->UnshareObject(GlobalObjectId(node, obj)));
        mutation_cursor = node + 1;
        break;
      }
      simulator.RunUntilIdle();
    }
  }
  result.wire_bytes = network.total_wire_bytes();
  result.metrics = registry.TakeSnapshot();
  result.trace = simulator.shared_trace();
  result.flight = simulator.shared_flight();
  sampling.Finish(&result);
  return result;
}

// ------------------------------------------------------------------ CS

Result<ExperimentResult> RunCs(const ExperimentOptions& options) {
  metrics::Registry registry;
  sim::Simulator simulator;
  if (TraceRequested(options)) simulator.EnableTracing();
  MaybeEnableFlight(&simulator, options);
  Sampling sampling(&simulator, &registry, options);
  sim::NetworkOptions net_options = options.net;
  net_options.metrics = &registry;
  sim::SimNetwork network(&simulator, net_options);
  net::SimTransportFleet fleet(&network);

  const Topology& topo = options.topology;
  std::vector<NodeId> ids;
  for (size_t i = 0; i < topo.node_count; ++i) ids.push_back(network.AddNode());

  baseline::CsConfig config;
  config.single_thread = options.scheme == Scheme::kScs;
  config.codec = options.codec;
  config.ship_content = options.answer_mode == core::AnswerMode::kDirect;
  config.use_index_search = options.use_index_search;

  std::vector<std::unique_ptr<baseline::CsNode>> nodes;
  CorpusGenerator corpus({options.object_size, 500, 0.8}, options.seed);
  for (size_t i = 0; i < topo.node_count; ++i) {
    BP_ASSIGN_OR_RETURN(auto node,
                        baseline::CsNode::Create(fleet.For(ids[i]), config));
    storm::StormOptions store = StoreOptions(options);
    store.metrics = &registry;
    store.metrics_label = std::to_string(ids[i]);
    BP_RETURN_IF_ERROR(node->InitStorage(store));
    BP_RETURN_IF_ERROR(PopulateStore(
        options, i, corpus,
        [&node](storm::ObjectId id, const Bytes& content) {
          return node->ShareObject(id, content);
        }));
    nodes.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddNeighborLocal(ids[b]);
    nodes[b]->AddNeighborLocal(ids[a]);
  }

  baseline::CsNode& base = *nodes[topo.base];
  ExperimentResult result;
  for (size_t q = 0; q < options.queries; ++q) {
    BP_ASSIGN_OR_RETURN(uint64_t query_id,
                        base.IssueQuery(CorpusGenerator::kNeedle));
    sampling.Arm();
    simulator.RunUntilIdle();
    const baseline::CsSession* session = base.FindSession(query_id);
    if (session == nullptr) return Status::Internal("cs session lost");
    QueryMetrics metrics;
    metrics.completion = session->completion_time();
    metrics.total_answers = session->total_answers();
    metrics.responders = session->responder_count();
    metrics.responses = session->answers();
    for (auto& e : metrics.responses) e.time -= session->start_time();
    RecordQuerySpan(simulator, static_cast<uint32_t>(ids[topo.base]),
                    query_id, session->start_time(),
                    session->completion_time());
    result.queries.push_back(std::move(metrics));
  }
  result.wire_bytes = network.total_wire_bytes();
  result.metrics = registry.TakeSnapshot();
  result.trace = simulator.shared_trace();
  result.flight = simulator.shared_flight();
  sampling.Finish(&result);
  return result;
}

// ------------------------------------------------------------------ Gnutella

Result<ExperimentResult> RunGnutella(const ExperimentOptions& options) {
  metrics::Registry registry;
  sim::Simulator simulator;
  if (TraceRequested(options)) simulator.EnableTracing();
  MaybeEnableFlight(&simulator, options);
  Sampling sampling(&simulator, &registry, options);
  sim::NetworkOptions net_options = options.net;
  net_options.metrics = &registry;
  sim::SimNetwork network(&simulator, net_options);
  net::SimTransportFleet fleet(&network);

  const Topology& topo = options.topology;
  std::vector<NodeId> ids;
  for (size_t i = 0; i < topo.node_count; ++i) ids.push_back(network.AddNode());

  baseline::GnutellaConfig config;
  config.default_ttl = static_cast<uint8_t>(
      std::min<uint16_t>(options.ttl, 255));

  std::vector<std::unique_ptr<baseline::GnutellaNode>> nodes;
  CorpusGenerator corpus({options.object_size, 500, 0.8}, options.seed);
  for (size_t i = 0; i < topo.node_count; ++i) {
    BP_ASSIGN_OR_RETURN(
        auto node, baseline::GnutellaNode::Create(fleet.For(ids[i]), config));
    size_t matches = options.MatchesAt(i);
    for (size_t f = 0; f < options.files_per_node; ++f) {
      node->ShareFile(corpus.MakeFileName(f < matches, f),
                      static_cast<uint32_t>(options.object_size));
    }
    nodes.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddNeighborLocal(ids[b]);
    nodes[b]->AddNeighborLocal(ids[a]);
  }

  baseline::GnutellaNode& base = *nodes[topo.base];
  ExperimentResult result;
  for (size_t q = 0; q < options.queries; ++q) {
    BP_ASSIGN_OR_RETURN(uint64_t key,
                        base.IssueQuery(CorpusGenerator::kNeedle));
    sampling.Arm();
    simulator.RunUntilIdle();
    const baseline::GnutellaSession* session = base.FindSession(key);
    if (session == nullptr) return Status::Internal("gnutella session lost");
    QueryMetrics metrics;
    metrics.completion = session->completion_time();
    metrics.total_answers = session->total_files();
    metrics.responders = session->responder_count();
    metrics.responses = session->hits();
    for (auto& e : metrics.responses) e.time -= session->start_time();
    RecordQuerySpan(simulator, static_cast<uint32_t>(ids[topo.base]), key,
                    session->start_time(), session->completion_time());
    result.queries.push_back(std::move(metrics));
  }
  result.wire_bytes = network.total_wire_bytes();
  result.metrics = registry.TakeSnapshot();
  result.trace = simulator.shared_trace();
  result.flight = simulator.shared_flight();
  sampling.Finish(&result);
  return result;
}

}  // namespace

Result<ExperimentResult> RunExperiment(const ExperimentOptions& options) {
  if (options.topology.node_count == 0) {
    return Status::InvalidArgument("empty topology");
  }
  if (!options.matches_per_node_vec.empty() &&
      options.matches_per_node_vec.size() != options.topology.node_count) {
    return Status::InvalidArgument("placement size != node count");
  }
  Result<ExperimentResult> result = Status::InvalidArgument("unknown scheme");
  switch (options.scheme) {
    case Scheme::kScs:
    case Scheme::kMcs:
      result = RunCs(options);
      break;
    case Scheme::kBps:
    case Scheme::kBpr:
      result = RunBestPeer(options);
      break;
    case Scheme::kGnutella:
      result = RunGnutella(options);
      break;
  }
  if (result.ok() && result.value().trace != nullptr) {
    if (const char* out = std::getenv("BP_TRACE_OUT")) {
      Status s = result.value().trace->WriteChromeJson(out);
      if (!s.ok()) {
        BP_LOG(Warn) << "BP_TRACE_OUT write failed: " << s.ToString();
      }
    }
  }
  if (result.ok() && result.value().flight != nullptr) {
    if (const char* out = std::getenv("BP_FLIGHT_OUT")) {
      Status s = result.value().flight->WriteNdjson(out);
      if (!s.ok()) {
        BP_LOG(Warn) << "BP_FLIGHT_OUT write failed: " << s.ToString();
      }
    }
  }
  return result;
}

Result<ExperimentResult> RunAveraged(ExperimentOptions options,
                                     const std::vector<uint64_t>& seeds) {
  if (seeds.empty()) return Status::InvalidArgument("no seeds");
  ExperimentResult merged;
  for (uint64_t seed : seeds) {
    options.seed = seed;
    BP_ASSIGN_OR_RETURN(ExperimentResult one, RunExperiment(options));
    if (merged.queries.empty()) {
      merged.queries.resize(one.queries.size());
    }
    merged.wire_bytes += one.wire_bytes;
    merged.metrics.Merge(one.metrics);
    if (merged.trace == nullptr) merged.trace = one.trace;
    if (merged.flight == nullptr) merged.flight = one.flight;
    if (merged.timeseries.empty()) merged.timeseries = std::move(one.timeseries);
    for (size_t q = 0; q < one.queries.size(); ++q) {
      merged.queries[q].completion += one.queries[q].completion;
      merged.queries[q].total_answers += one.queries[q].total_answers;
      merged.queries[q].unique_answers += one.queries[q].unique_answers;
      merged.queries[q].responders += one.queries[q].responders;
      // Response curves: keep the first seed's curve as representative.
      if (merged.queries[q].responses.empty()) {
        merged.queries[q].responses = one.queries[q].responses;
      }
    }
  }
  merged.wire_bytes /= seeds.size();
  for (auto& q : merged.queries) {
    q.completion /= static_cast<SimTime>(seeds.size());
    q.total_answers /= seeds.size();
    q.unique_answers /= seeds.size();
    q.responders /= seeds.size();
  }
  return merged;
}

}  // namespace bestpeer::workload
