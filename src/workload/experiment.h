#ifndef BESTPEER_WORKLOAD_EXPERIMENT_H_
#define BESTPEER_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/session.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "sim/network.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/sim_time.h"
#include "util/trace.h"
#include "workload/corpus.h"
#include "workload/fault_options.h"
#include "workload/topology.h"

namespace bestpeer::workload {

/// The schemes compared in §4.
enum class Scheme {
  kScs,      ///< Single-thread client/server.
  kMcs,      ///< Multi-thread client/server.
  kBps,      ///< Static BestPeer (reconfiguration off).
  kBpr,      ///< Reconfigurable BestPeer.
  kGnutella  ///< Gnutella protocol servants (FURI-like).
};

/// Scheme name for report rows ("SCS", "MCS", "BPS", "BPR", "Gnutella").
std::string SchemeName(Scheme scheme);

/// One run of one query.
struct QueryMetrics {
  /// Time until all answers were received.
  SimTime completion = 0;
  /// (time, node, answers) per result arrival at the base node.
  std::vector<core::ResponseEvent> responses;
  size_t total_answers = 0;
  /// Distinct object ids among the answers (replication can duplicate).
  size_t unique_answers = 0;
  size_t responders = 0;
};

/// Full outcome of one experiment (same query repeated `queries` times).
struct ExperimentResult {
  std::vector<QueryMetrics> queries;
  /// Total bytes that crossed the simulated wire over all queries.
  uint64_t wire_bytes = 0;
  /// Snapshot of every instrument the run touched (net.*, cpu.*, agent.*,
  /// core.*, storm.*). RunAveraged sums snapshots across seeds.
  metrics::Snapshot metrics;
  /// Per-query trace spans, present iff tracing was on (ExperimentOptions
  /// trace flag or BP_TRACE_OUT). RunAveraged keeps the first seed's trace.
  std::shared_ptr<trace::TraceRecorder> trace;
  /// Periodic Registry samples, non-empty iff sample_interval (or
  /// BP_SAMPLE_INTERVAL_US) was set. RunAveraged keeps the first seed's.
  obs::TimeSeries timeseries;
  /// Flight-recorder ring, present iff flight recording was on
  /// (flight_capacity or BP_FLIGHT_OUT). RunAveraged keeps the first
  /// seed's recorder.
  std::shared_ptr<obs::FlightRecorder> flight;

  double MeanCompletionMs() const;
  double CompletionMs(size_t query_index) const;
  double LastCompletionMs() const;
  size_t TotalAnswers() const;
};

/// Configuration of one §4 experiment.
struct ExperimentOptions {
  Topology topology;
  Scheme scheme = Scheme::kBpr;

  /// Per-node store: `objects_per_node` objects of `object_size` bytes,
  /// of which `matches_per_node[i]` (or the uniform `matches_per_node`
  /// fallback) contain the query keyword at node i.
  size_t objects_per_node = 1000;
  size_t object_size = 1024;
  size_t matches_per_node = 10;
  std::vector<size_t> matches_per_node_vec;  // Optional override.

  /// How many times the same query is issued (reconfiguration takes
  /// effect between repetitions for BPR).
  size_t queries = 4;

  /// BestPeer-specific knobs.
  core::AnswerMode answer_mode = core::AnswerMode::kDirect;
  std::string strategy = "maxcount";  // BPR strategy.
  size_t max_direct_peers = 8;        // k.
  bool auto_fetch = true;             // Mode-2 content fetch.
  std::string codec = "lzss";
  uint16_t ttl = 16;

  /// Gnutella-specific: files per node (matching counts reuse
  /// matches_per_node / matches_per_node_vec).
  size_t files_per_node = 1000;

  /// Enable each node's StorM query cache: repeated identical queries
  /// skip the store scan until the store mutates.
  bool enable_query_cache = false;

  /// Result-cache & hot-answer replication knobs (BestPeer schemes only;
  /// they map onto the matching BestPeerConfig fields).
  bool enable_result_cache = false;
  size_t result_cache_bytes = 256 * 1024;
  bool cache_lru_only = false;
  bool enable_replication = false;
  uint32_t replica_hot_threshold = 3;
  size_t replica_top_k = 4;
  SimTime replica_ttl = 0;  ///< Receiver-side replica lifetime (0 = none).

  /// Gossip anti-entropy plane (maps onto BestPeerConfig::enable_gossip
  /// and friends). Off keeps schedules bit-identical to a gossip-less
  /// build.
  bool enable_gossip = false;
  size_t gossip_fanout = 2;
  SimTime gossip_interval = Millis(2);

  /// QoS-scored replica placement (replica_fanout best peers instead of
  /// a direct-neighbor broadcast).
  bool qos_replica_placement = false;
  size_t replica_fanout = 2;

  /// Count stale cache probes in core.cache_stale_probes (observational;
  /// never affects scheduling).
  bool count_stale_probes = false;

  /// Fault injection & recovery (shared knob block; defaults keep the
  /// fault machinery entirely out of the run — bit-identical schedules).
  FaultRecoveryOptions fault;

  /// Index-backed search: agents (and CS servers) answer from the StorM
  /// keyword index, charged per posting touched. Forces build_index at
  /// every store. Off keeps schedules bit-identical to the scan path.
  bool use_index_search = false;

  /// Per-peer content summaries (BestPeer schemes only): nodes exchange
  /// Bloom digests of their stores and the base skips launching agents
  /// toward direct peers that provably hold no match.
  bool enable_content_summaries = false;

  /// Zipf-repeat query mode: when query_pool > 0, each query's keyword is
  /// "needle<rank>" with rank drawn from a ZipfSampler over the pool
  /// (skew query_zipf_skew, dedicated rng), and matching objects contain
  /// every pool token so each of them answers all pooled queries. The
  /// skewed repetition is what gives a result cache something to hit.
  /// 0 = the original single-keyword workload, bit-identical to before.
  size_t query_pool = 0;
  double query_zipf_skew = 1.1;

  /// When > 0: after every `mutate_every`-th query, unshare one matching
  /// object at a rotating non-base node — a mid-workload StorM mutation
  /// that must invalidate cached results (never serve stale). 0 = off.
  size_t mutate_every = 0;

  /// Pre-load the standard agent classes at every node before measuring.
  /// The StorM search agent ships with the BestPeer platform, so steady
  /// state has it resident everywhere; set false to measure cold-cache
  /// code-shipping cost (the ablation benches do).
  bool prewarm_code_cache = true;

  uint64_t seed = 42;
  sim::NetworkOptions net;

  /// Record per-query trace spans (query launch, agent hops, scans,
  /// answer return) against the virtual clock. Also forced on when the
  /// BP_TRACE_OUT environment variable is set, in which case
  /// RunExperiment writes the Chrome-trace JSON to that path on return.
  bool trace = false;

  /// Sim-time sampling cadence for the result's `timeseries` (0 = off).
  /// BP_SAMPLE_INTERVAL_US (microseconds) overrides when set.
  SimTime sample_interval = 0;

  /// Flight-recorder ring capacity in events (0 = off). Setting
  /// BP_FLIGHT_OUT also enables it (default capacity) and makes
  /// RunExperiment write the NDJSON dump to that path on return;
  /// anomalies additionally auto-dump there mid-run.
  size_t flight_capacity = 0;

  /// Number of matches expected at node `i`.
  size_t MatchesAt(size_t i) const {
    if (!matches_per_node_vec.empty()) return matches_per_node_vec[i];
    return matches_per_node;
  }
};

/// Builds the network described by `options`, runs the repeated query and
/// returns per-query metrics. Deterministic per (options, seed).
Result<ExperimentResult> RunExperiment(const ExperimentOptions& options);

/// Averages the same experiment over `seeds.size()` runs, like the
/// paper's "average of at least three different executions".
Result<ExperimentResult> RunAveraged(ExperimentOptions options,
                                     const std::vector<uint64_t>& seeds);

/// Places `hot_count` nodes with `matches_each` answers as far from the
/// base as possible (everyone else has none) — the Fig. 8 setup where
/// answers "come from only a few nodes".
std::vector<size_t> FarHotPlacement(const Topology& topology,
                                    size_t hot_count, size_t matches_each);

}  // namespace bestpeer::workload

#endif  // BESTPEER_WORKLOAD_EXPERIMENT_H_
