#ifndef BESTPEER_WORKLOAD_FAULT_OPTIONS_H_
#define BESTPEER_WORKLOAD_FAULT_OPTIONS_H_

#include <cstdint>

#include "core/config.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::workload {

/// The fault-injection & recovery knob block shared by every workload
/// driver (ExperimentOptions, ChurnOptions, the scenario engine's
/// ScenarioSpec). Defaults keep both planes entirely off: no injector is
/// attached, no recovery field deviates from BestPeerConfig's own
/// defaults, and schedules stay bit-identical to a fault-free build.
struct FaultRecoveryOptions {
  // --- injection --------------------------------------------------------

  /// Probability that any message is lost in flight (fault injector;
  /// seeded from the run seed, so runs stay deterministic).
  double message_loss = 0.0;

  // --- recovery ---------------------------------------------------------

  /// Per-query deadline: sessions finalize with partial answers and late
  /// results are dropped. 0 = queries wait forever (lossless default).
  SimTime query_deadline = 0;

  /// LIGLO client resends after timeout (join/rejoin/discover survive
  /// loss). 0 = single attempt.
  int liglo_retries = 0;

  /// Consecutive missed deadlines before a direct peer is evicted and
  /// replaced (only observable when query_deadline > 0).
  uint32_t peer_failure_threshold = 3;

  /// Agent duplicate-table expiry (0 = never forget lost agents).
  SimTime agent_seen_expiry = 0;

  /// Copies the recovery knobs onto a node config. With default options
  /// every assignment writes the config's own default back, so this is
  /// safe to call unconditionally.
  void ApplyTo(core::BestPeerConfig* config) const {
    config->query_deadline = query_deadline;
    config->peer_failure_threshold = peer_failure_threshold;
    config->liglo_max_retries = liglo_retries;
    config->agent_seen_expiry = agent_seen_expiry;
  }

  /// Attaches the simulator's fault injector when message_loss > 0. Must
  /// precede SimNetwork construction so the network binds to the
  /// injector; zero loss attaches nothing, which is what keeps fault-free
  /// runs bit-identical. The injector's seed is derived from the run seed
  /// with a fixed tweak so the fault stream never aliases a workload rng.
  void EnableOn(sim::Simulator* sim, uint64_t seed,
                metrics::Registry* metrics) const {
    if (message_loss <= 0) return;
    sim::FaultOptions fo;
    fo.seed = seed ^ 0xFA17;
    fo.message_loss = message_loss;
    fo.metrics = metrics;
    sim->EnableFaults(fo);
  }
};

}  // namespace bestpeer::workload

#endif  // BESTPEER_WORKLOAD_FAULT_OPTIONS_H_
