file(REMOVE_RECURSE
  "CMakeFiles/core_shipping_test.dir/core_shipping_test.cc.o"
  "CMakeFiles/core_shipping_test.dir/core_shipping_test.cc.o.d"
  "core_shipping_test"
  "core_shipping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_shipping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
