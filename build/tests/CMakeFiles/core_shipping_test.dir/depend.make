# Empty dependencies file for core_shipping_test.
# This may be replaced when dependencies are built.
