# Empty dependencies file for liglo_test.
# This may be replaced when dependencies are built.
