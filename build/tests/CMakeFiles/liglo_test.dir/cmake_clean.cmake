file(REMOVE_RECURSE
  "CMakeFiles/liglo_test.dir/liglo_test.cc.o"
  "CMakeFiles/liglo_test.dir/liglo_test.cc.o.d"
  "liglo_test"
  "liglo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liglo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
