file(REMOVE_RECURSE
  "CMakeFiles/baseline_gnutella_test.dir/baseline_gnutella_test.cc.o"
  "CMakeFiles/baseline_gnutella_test.dir/baseline_gnutella_test.cc.o.d"
  "baseline_gnutella_test"
  "baseline_gnutella_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_gnutella_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
