# Empty dependencies file for baseline_gnutella_test.
# This may be replaced when dependencies are built.
