file(REMOVE_RECURSE
  "CMakeFiles/storm_buffer_pool_test.dir/storm_buffer_pool_test.cc.o"
  "CMakeFiles/storm_buffer_pool_test.dir/storm_buffer_pool_test.cc.o.d"
  "storm_buffer_pool_test"
  "storm_buffer_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_buffer_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
