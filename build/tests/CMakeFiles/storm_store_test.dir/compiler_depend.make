# Empty compiler generated dependencies file for storm_store_test.
# This may be replaced when dependencies are built.
