file(REMOVE_RECURSE
  "CMakeFiles/storm_store_test.dir/storm_store_test.cc.o"
  "CMakeFiles/storm_store_test.dir/storm_store_test.cc.o.d"
  "storm_store_test"
  "storm_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
