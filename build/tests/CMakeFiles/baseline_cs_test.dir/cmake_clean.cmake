file(REMOVE_RECURSE
  "CMakeFiles/baseline_cs_test.dir/baseline_cs_test.cc.o"
  "CMakeFiles/baseline_cs_test.dir/baseline_cs_test.cc.o.d"
  "baseline_cs_test"
  "baseline_cs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
