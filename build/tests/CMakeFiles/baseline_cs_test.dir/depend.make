# Empty dependencies file for baseline_cs_test.
# This may be replaced when dependencies are built.
