file(REMOVE_RECURSE
  "CMakeFiles/storm_wal_test.dir/storm_wal_test.cc.o"
  "CMakeFiles/storm_wal_test.dir/storm_wal_test.cc.o.d"
  "storm_wal_test"
  "storm_wal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
