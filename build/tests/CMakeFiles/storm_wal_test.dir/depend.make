# Empty dependencies file for storm_wal_test.
# This may be replaced when dependencies are built.
