file(REMOVE_RECURSE
  "CMakeFiles/workload_churn_test.dir/workload_churn_test.cc.o"
  "CMakeFiles/workload_churn_test.dir/workload_churn_test.cc.o.d"
  "workload_churn_test"
  "workload_churn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
