file(REMOVE_RECURSE
  "CMakeFiles/liglo_protocol_test.dir/liglo_protocol_test.cc.o"
  "CMakeFiles/liglo_protocol_test.dir/liglo_protocol_test.cc.o.d"
  "liglo_protocol_test"
  "liglo_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liglo_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
