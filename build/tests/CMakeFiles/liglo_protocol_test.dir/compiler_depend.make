# Empty compiler generated dependencies file for liglo_protocol_test.
# This may be replaced when dependencies are built.
