file(REMOVE_RECURSE
  "CMakeFiles/core_replication_test.dir/core_replication_test.cc.o"
  "CMakeFiles/core_replication_test.dir/core_replication_test.cc.o.d"
  "core_replication_test"
  "core_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
