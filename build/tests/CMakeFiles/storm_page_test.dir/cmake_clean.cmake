file(REMOVE_RECURSE
  "CMakeFiles/storm_page_test.dir/storm_page_test.cc.o"
  "CMakeFiles/storm_page_test.dir/storm_page_test.cc.o.d"
  "storm_page_test"
  "storm_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
