# Empty compiler generated dependencies file for storm_page_test.
# This may be replaced when dependencies are built.
