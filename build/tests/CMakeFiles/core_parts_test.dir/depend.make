# Empty dependencies file for core_parts_test.
# This may be replaced when dependencies are built.
