file(REMOVE_RECURSE
  "CMakeFiles/core_parts_test.dir/core_parts_test.cc.o"
  "CMakeFiles/core_parts_test.dir/core_parts_test.cc.o.d"
  "core_parts_test"
  "core_parts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
