file(REMOVE_RECURSE
  "CMakeFiles/storm_query_test.dir/storm_query_test.cc.o"
  "CMakeFiles/storm_query_test.dir/storm_query_test.cc.o.d"
  "storm_query_test"
  "storm_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
