# Empty dependencies file for peer_monitoring.
# This may be replaced when dependencies are built.
