file(REMOVE_RECURSE
  "CMakeFiles/peer_monitoring.dir/peer_monitoring.cpp.o"
  "CMakeFiles/peer_monitoring.dir/peer_monitoring.cpp.o.d"
  "peer_monitoring"
  "peer_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
