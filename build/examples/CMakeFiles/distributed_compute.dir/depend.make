# Empty dependencies file for distributed_compute.
# This may be replaced when dependencies are built.
