file(REMOVE_RECURSE
  "CMakeFiles/distributed_compute.dir/distributed_compute.cpp.o"
  "CMakeFiles/distributed_compute.dir/distributed_compute.cpp.o.d"
  "distributed_compute"
  "distributed_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
