# Empty compiler generated dependencies file for content_search.
# This may be replaced when dependencies are built.
