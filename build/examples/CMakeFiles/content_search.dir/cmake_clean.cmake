file(REMOVE_RECURSE
  "CMakeFiles/content_search.dir/content_search.cpp.o"
  "CMakeFiles/content_search.dir/content_search.cpp.o.d"
  "content_search"
  "content_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
