file(REMOVE_RECURSE
  "CMakeFiles/network_churn.dir/network_churn.cpp.o"
  "CMakeFiles/network_churn.dir/network_churn.cpp.o.d"
  "network_churn"
  "network_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
