
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/liglo_dynamic_ips.cpp" "examples/CMakeFiles/liglo_dynamic_ips.dir/liglo_dynamic_ips.cpp.o" "gcc" "examples/CMakeFiles/liglo_dynamic_ips.dir/liglo_dynamic_ips.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/liglo/CMakeFiles/bp_liglo.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/bp_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/bp_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
