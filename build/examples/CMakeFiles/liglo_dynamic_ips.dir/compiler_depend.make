# Empty compiler generated dependencies file for liglo_dynamic_ips.
# This may be replaced when dependencies are built.
