file(REMOVE_RECURSE
  "CMakeFiles/liglo_dynamic_ips.dir/liglo_dynamic_ips.cpp.o"
  "CMakeFiles/liglo_dynamic_ips.dir/liglo_dynamic_ips.cpp.o.d"
  "liglo_dynamic_ips"
  "liglo_dynamic_ips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liglo_dynamic_ips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
