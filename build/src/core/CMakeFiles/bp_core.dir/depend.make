# Empty dependencies file for bp_core.
# This may be replaced when dependencies are built.
