file(REMOVE_RECURSE
  "libbp_core.a"
)
