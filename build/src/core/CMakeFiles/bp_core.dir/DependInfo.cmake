
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_object.cc" "src/core/CMakeFiles/bp_core.dir/active_object.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/active_object.cc.o.d"
  "/root/repo/src/core/compute.cc" "src/core/CMakeFiles/bp_core.dir/compute.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/compute.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/core/CMakeFiles/bp_core.dir/messages.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/messages.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/bp_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/node.cc.o.d"
  "/root/repo/src/core/peer_list.cc" "src/core/CMakeFiles/bp_core.dir/peer_list.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/peer_list.cc.o.d"
  "/root/repo/src/core/reconfig_strategy.cc" "src/core/CMakeFiles/bp_core.dir/reconfig_strategy.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/reconfig_strategy.cc.o.d"
  "/root/repo/src/core/search_agent.cc" "src/core/CMakeFiles/bp_core.dir/search_agent.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/search_agent.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/bp_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/session.cc.o.d"
  "/root/repo/src/core/shipping.cc" "src/core/CMakeFiles/bp_core.dir/shipping.cc.o" "gcc" "src/core/CMakeFiles/bp_core.dir/shipping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/bp_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/bp_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/liglo/CMakeFiles/bp_liglo.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
