file(REMOVE_RECURSE
  "CMakeFiles/bp_core.dir/active_object.cc.o"
  "CMakeFiles/bp_core.dir/active_object.cc.o.d"
  "CMakeFiles/bp_core.dir/compute.cc.o"
  "CMakeFiles/bp_core.dir/compute.cc.o.d"
  "CMakeFiles/bp_core.dir/messages.cc.o"
  "CMakeFiles/bp_core.dir/messages.cc.o.d"
  "CMakeFiles/bp_core.dir/node.cc.o"
  "CMakeFiles/bp_core.dir/node.cc.o.d"
  "CMakeFiles/bp_core.dir/peer_list.cc.o"
  "CMakeFiles/bp_core.dir/peer_list.cc.o.d"
  "CMakeFiles/bp_core.dir/reconfig_strategy.cc.o"
  "CMakeFiles/bp_core.dir/reconfig_strategy.cc.o.d"
  "CMakeFiles/bp_core.dir/search_agent.cc.o"
  "CMakeFiles/bp_core.dir/search_agent.cc.o.d"
  "CMakeFiles/bp_core.dir/session.cc.o"
  "CMakeFiles/bp_core.dir/session.cc.o.d"
  "CMakeFiles/bp_core.dir/shipping.cc.o"
  "CMakeFiles/bp_core.dir/shipping.cc.o.d"
  "libbp_core.a"
  "libbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
