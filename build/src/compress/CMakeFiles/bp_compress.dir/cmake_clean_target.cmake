file(REMOVE_RECURSE
  "libbp_compress.a"
)
