# Empty compiler generated dependencies file for bp_compress.
# This may be replaced when dependencies are built.
