file(REMOVE_RECURSE
  "CMakeFiles/bp_compress.dir/codec.cc.o"
  "CMakeFiles/bp_compress.dir/codec.cc.o.d"
  "CMakeFiles/bp_compress.dir/lzss_codec.cc.o"
  "CMakeFiles/bp_compress.dir/lzss_codec.cc.o.d"
  "libbp_compress.a"
  "libbp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
