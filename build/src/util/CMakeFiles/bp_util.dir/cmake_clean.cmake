file(REMOVE_RECURSE
  "CMakeFiles/bp_util.dir/bytes.cc.o"
  "CMakeFiles/bp_util.dir/bytes.cc.o.d"
  "CMakeFiles/bp_util.dir/hash.cc.o"
  "CMakeFiles/bp_util.dir/hash.cc.o.d"
  "CMakeFiles/bp_util.dir/logging.cc.o"
  "CMakeFiles/bp_util.dir/logging.cc.o.d"
  "CMakeFiles/bp_util.dir/rng.cc.o"
  "CMakeFiles/bp_util.dir/rng.cc.o.d"
  "CMakeFiles/bp_util.dir/sim_time.cc.o"
  "CMakeFiles/bp_util.dir/sim_time.cc.o.d"
  "CMakeFiles/bp_util.dir/stats.cc.o"
  "CMakeFiles/bp_util.dir/stats.cc.o.d"
  "CMakeFiles/bp_util.dir/status.cc.o"
  "CMakeFiles/bp_util.dir/status.cc.o.d"
  "CMakeFiles/bp_util.dir/strings.cc.o"
  "CMakeFiles/bp_util.dir/strings.cc.o.d"
  "libbp_util.a"
  "libbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
