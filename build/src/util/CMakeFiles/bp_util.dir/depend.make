# Empty dependencies file for bp_util.
# This may be replaced when dependencies are built.
