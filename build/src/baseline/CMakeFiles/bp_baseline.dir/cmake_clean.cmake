file(REMOVE_RECURSE
  "CMakeFiles/bp_baseline.dir/cs_node.cc.o"
  "CMakeFiles/bp_baseline.dir/cs_node.cc.o.d"
  "CMakeFiles/bp_baseline.dir/gnutella.cc.o"
  "CMakeFiles/bp_baseline.dir/gnutella.cc.o.d"
  "libbp_baseline.a"
  "libbp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
