file(REMOVE_RECURSE
  "libbp_baseline.a"
)
