# Empty dependencies file for bp_baseline.
# This may be replaced when dependencies are built.
