file(REMOVE_RECURSE
  "CMakeFiles/bp_agent.dir/agent_message.cc.o"
  "CMakeFiles/bp_agent.dir/agent_message.cc.o.d"
  "CMakeFiles/bp_agent.dir/agent_registry.cc.o"
  "CMakeFiles/bp_agent.dir/agent_registry.cc.o.d"
  "CMakeFiles/bp_agent.dir/agent_runtime.cc.o"
  "CMakeFiles/bp_agent.dir/agent_runtime.cc.o.d"
  "libbp_agent.a"
  "libbp_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
