# Empty dependencies file for bp_agent.
# This may be replaced when dependencies are built.
