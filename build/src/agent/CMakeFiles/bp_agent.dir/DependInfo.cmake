
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent_message.cc" "src/agent/CMakeFiles/bp_agent.dir/agent_message.cc.o" "gcc" "src/agent/CMakeFiles/bp_agent.dir/agent_message.cc.o.d"
  "/root/repo/src/agent/agent_registry.cc" "src/agent/CMakeFiles/bp_agent.dir/agent_registry.cc.o" "gcc" "src/agent/CMakeFiles/bp_agent.dir/agent_registry.cc.o.d"
  "/root/repo/src/agent/agent_runtime.cc" "src/agent/CMakeFiles/bp_agent.dir/agent_runtime.cc.o" "gcc" "src/agent/CMakeFiles/bp_agent.dir/agent_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/bp_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/bp_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
