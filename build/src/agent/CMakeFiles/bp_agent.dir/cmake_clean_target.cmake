file(REMOVE_RECURSE
  "libbp_agent.a"
)
