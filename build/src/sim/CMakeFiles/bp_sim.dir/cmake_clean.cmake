file(REMOVE_RECURSE
  "CMakeFiles/bp_sim.dir/cpu.cc.o"
  "CMakeFiles/bp_sim.dir/cpu.cc.o.d"
  "CMakeFiles/bp_sim.dir/dispatcher.cc.o"
  "CMakeFiles/bp_sim.dir/dispatcher.cc.o.d"
  "CMakeFiles/bp_sim.dir/event_queue.cc.o"
  "CMakeFiles/bp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/bp_sim.dir/network.cc.o"
  "CMakeFiles/bp_sim.dir/network.cc.o.d"
  "CMakeFiles/bp_sim.dir/simulator.cc.o"
  "CMakeFiles/bp_sim.dir/simulator.cc.o.d"
  "libbp_sim.a"
  "libbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
