# Empty compiler generated dependencies file for bp_sim.
# This may be replaced when dependencies are built.
