file(REMOVE_RECURSE
  "libbp_sim.a"
)
