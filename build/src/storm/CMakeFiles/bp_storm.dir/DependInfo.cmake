
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storm/buffer_pool.cc" "src/storm/CMakeFiles/bp_storm.dir/buffer_pool.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storm/keyword_index.cc" "src/storm/CMakeFiles/bp_storm.dir/keyword_index.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/keyword_index.cc.o.d"
  "/root/repo/src/storm/object_store.cc" "src/storm/CMakeFiles/bp_storm.dir/object_store.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/object_store.cc.o.d"
  "/root/repo/src/storm/page.cc" "src/storm/CMakeFiles/bp_storm.dir/page.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/page.cc.o.d"
  "/root/repo/src/storm/pager.cc" "src/storm/CMakeFiles/bp_storm.dir/pager.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/pager.cc.o.d"
  "/root/repo/src/storm/query_expr.cc" "src/storm/CMakeFiles/bp_storm.dir/query_expr.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/query_expr.cc.o.d"
  "/root/repo/src/storm/replacement.cc" "src/storm/CMakeFiles/bp_storm.dir/replacement.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/replacement.cc.o.d"
  "/root/repo/src/storm/storm.cc" "src/storm/CMakeFiles/bp_storm.dir/storm.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/storm.cc.o.d"
  "/root/repo/src/storm/wal.cc" "src/storm/CMakeFiles/bp_storm.dir/wal.cc.o" "gcc" "src/storm/CMakeFiles/bp_storm.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
