# Empty dependencies file for bp_storm.
# This may be replaced when dependencies are built.
