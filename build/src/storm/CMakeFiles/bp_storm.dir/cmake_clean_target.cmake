file(REMOVE_RECURSE
  "libbp_storm.a"
)
