file(REMOVE_RECURSE
  "CMakeFiles/bp_storm.dir/buffer_pool.cc.o"
  "CMakeFiles/bp_storm.dir/buffer_pool.cc.o.d"
  "CMakeFiles/bp_storm.dir/keyword_index.cc.o"
  "CMakeFiles/bp_storm.dir/keyword_index.cc.o.d"
  "CMakeFiles/bp_storm.dir/object_store.cc.o"
  "CMakeFiles/bp_storm.dir/object_store.cc.o.d"
  "CMakeFiles/bp_storm.dir/page.cc.o"
  "CMakeFiles/bp_storm.dir/page.cc.o.d"
  "CMakeFiles/bp_storm.dir/pager.cc.o"
  "CMakeFiles/bp_storm.dir/pager.cc.o.d"
  "CMakeFiles/bp_storm.dir/query_expr.cc.o"
  "CMakeFiles/bp_storm.dir/query_expr.cc.o.d"
  "CMakeFiles/bp_storm.dir/replacement.cc.o"
  "CMakeFiles/bp_storm.dir/replacement.cc.o.d"
  "CMakeFiles/bp_storm.dir/storm.cc.o"
  "CMakeFiles/bp_storm.dir/storm.cc.o.d"
  "CMakeFiles/bp_storm.dir/wal.cc.o"
  "CMakeFiles/bp_storm.dir/wal.cc.o.d"
  "libbp_storm.a"
  "libbp_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
