# Empty compiler generated dependencies file for bp_liglo.
# This may be replaced when dependencies are built.
