# Empty dependencies file for bp_liglo.
# This may be replaced when dependencies are built.
