file(REMOVE_RECURSE
  "libbp_liglo.a"
)
