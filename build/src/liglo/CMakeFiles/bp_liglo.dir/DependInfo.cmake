
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liglo/bpid.cc" "src/liglo/CMakeFiles/bp_liglo.dir/bpid.cc.o" "gcc" "src/liglo/CMakeFiles/bp_liglo.dir/bpid.cc.o.d"
  "/root/repo/src/liglo/ip_directory.cc" "src/liglo/CMakeFiles/bp_liglo.dir/ip_directory.cc.o" "gcc" "src/liglo/CMakeFiles/bp_liglo.dir/ip_directory.cc.o.d"
  "/root/repo/src/liglo/liglo_client.cc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_client.cc.o" "gcc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_client.cc.o.d"
  "/root/repo/src/liglo/liglo_protocol.cc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_protocol.cc.o" "gcc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_protocol.cc.o.d"
  "/root/repo/src/liglo/liglo_server.cc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_server.cc.o" "gcc" "src/liglo/CMakeFiles/bp_liglo.dir/liglo_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
