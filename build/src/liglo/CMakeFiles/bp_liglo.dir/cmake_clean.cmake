file(REMOVE_RECURSE
  "CMakeFiles/bp_liglo.dir/bpid.cc.o"
  "CMakeFiles/bp_liglo.dir/bpid.cc.o.d"
  "CMakeFiles/bp_liglo.dir/ip_directory.cc.o"
  "CMakeFiles/bp_liglo.dir/ip_directory.cc.o.d"
  "CMakeFiles/bp_liglo.dir/liglo_client.cc.o"
  "CMakeFiles/bp_liglo.dir/liglo_client.cc.o.d"
  "CMakeFiles/bp_liglo.dir/liglo_protocol.cc.o"
  "CMakeFiles/bp_liglo.dir/liglo_protocol.cc.o.d"
  "CMakeFiles/bp_liglo.dir/liglo_server.cc.o"
  "CMakeFiles/bp_liglo.dir/liglo_server.cc.o.d"
  "libbp_liglo.a"
  "libbp_liglo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_liglo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
