file(REMOVE_RECURSE
  "CMakeFiles/bp_workload.dir/churn.cc.o"
  "CMakeFiles/bp_workload.dir/churn.cc.o.d"
  "CMakeFiles/bp_workload.dir/corpus.cc.o"
  "CMakeFiles/bp_workload.dir/corpus.cc.o.d"
  "CMakeFiles/bp_workload.dir/experiment.cc.o"
  "CMakeFiles/bp_workload.dir/experiment.cc.o.d"
  "CMakeFiles/bp_workload.dir/topology.cc.o"
  "CMakeFiles/bp_workload.dir/topology.cc.o.d"
  "libbp_workload.a"
  "libbp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
