file(REMOVE_RECURSE
  "CMakeFiles/bench_ttl_coverage.dir/bench_ttl_coverage.cc.o"
  "CMakeFiles/bench_ttl_coverage.dir/bench_ttl_coverage.cc.o.d"
  "bench_ttl_coverage"
  "bench_ttl_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ttl_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
