# Empty dependencies file for bench_ttl_coverage.
# This may be replaced when dependencies are built.
