# Empty compiler generated dependencies file for bench_fig8a_gnutella_runs.
# This may be replaced when dependencies are built.
