file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_gnutella_runs.dir/bench_fig8a_gnutella_runs.cc.o"
  "CMakeFiles/bench_fig8a_gnutella_runs.dir/bench_fig8a_gnutella_runs.cc.o.d"
  "bench_fig8a_gnutella_runs"
  "bench_fig8a_gnutella_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_gnutella_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
