# Empty dependencies file for bench_fig7_answers.
# This may be replaced when dependencies are built.
