file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_answers.dir/bench_fig7_answers.cc.o"
  "CMakeFiles/bench_fig7_answers.dir/bench_fig7_answers.cc.o.d"
  "bench_fig7_answers"
  "bench_fig7_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
