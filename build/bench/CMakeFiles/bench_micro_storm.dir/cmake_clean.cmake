file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_storm.dir/bench_micro_storm.cc.o"
  "CMakeFiles/bench_micro_storm.dir/bench_micro_storm.cc.o.d"
  "bench_micro_storm"
  "bench_micro_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
