file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_gnutella_peers.dir/bench_fig8b_gnutella_peers.cc.o"
  "CMakeFiles/bench_fig8b_gnutella_peers.dir/bench_fig8b_gnutella_peers.cc.o.d"
  "bench_fig8b_gnutella_peers"
  "bench_fig8b_gnutella_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_gnutella_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
