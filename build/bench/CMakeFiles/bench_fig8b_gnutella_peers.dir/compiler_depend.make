# Empty compiler generated dependencies file for bench_fig8b_gnutella_peers.
# This may be replaced when dependencies are built.
