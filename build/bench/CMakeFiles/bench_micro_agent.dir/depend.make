# Empty dependencies file for bench_micro_agent.
# This may be replaced when dependencies are built.
