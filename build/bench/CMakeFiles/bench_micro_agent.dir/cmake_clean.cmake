file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_agent.dir/bench_micro_agent.cc.o"
  "CMakeFiles/bench_micro_agent.dir/bench_micro_agent.cc.o.d"
  "bench_micro_agent"
  "bench_micro_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
