file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shipping.dir/bench_ablation_shipping.cc.o"
  "CMakeFiles/bench_ablation_shipping.dir/bench_ablation_shipping.cc.o.d"
  "bench_ablation_shipping"
  "bench_ablation_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
