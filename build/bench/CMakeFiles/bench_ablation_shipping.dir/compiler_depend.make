# Empty compiler generated dependencies file for bench_ablation_shipping.
# This may be replaced when dependencies are built.
